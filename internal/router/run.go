package router

import (
	"fmt"
	"time"

	"repro/internal/board"
	"repro/internal/cosim"
	"repro/internal/hdlsim"
	"repro/internal/obs"
)

// TransportKind selects how the two sides of a co-simulation run talk.
type TransportKind int

const (
	// TransportInProc uses in-process channels (fast, deterministic
	// wall-clock; identical simulated-time results to TCP).
	TransportInProc TransportKind = iota
	// TransportTCP uses real sockets over loopback, as in the paper's
	// host↔board setup.
	TransportTCP
)

// String implements fmt.Stringer.
func (t TransportKind) String() string {
	if t == TransportTCP {
		return "tcp"
	}
	return "inproc"
}

// RunConfig configures one full co-simulation of the router testbench.
type RunConfig struct {
	TB        TBConfig
	TSync     uint64
	Mode      cosim.SyncMode
	Transport TransportKind
	BoardCfg  board.Config
	AppCfg    AppConfig
	// MaxCycles bounds the run; 0 derives a budget from the workload.
	MaxCycles uint64
	// LinkDelay adds a wall-clock latency per message in each direction,
	// emulating the paper's host↔board Ethernet (see cosim.DelayTransport).
	LinkDelay time.Duration
	// Chaos, when non-nil, injects seeded link faults (drop, duplicate,
	// reorder, corrupt, truncate, delay) in both directions beneath the
	// resilience layer. Pair it with Resilience or the run will fail.
	Chaos *cosim.Scenario
	// Resilience, when non-nil, wraps both sides in a
	// cosim.SessionTransport (sequence numbers, acks, retransmission),
	// making the run survive chaos faults with identical results.
	Resilience *cosim.SessionConfig
	// Obs, when non-nil, receives live metrics for the run: per-quantum
	// CLOCK rendezvous histograms and channel counters from both
	// endpoints, session resilience counters, and per-run router gauges.
	// Scrape it (see internal/obs) while the run is alive.
	Obs *obs.Registry
}

// DefaultRunConfig assembles the experiment defaults.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		TB:        DefaultTBConfig(),
		TSync:     1000,
		Mode:      cosim.SyncAlternating,
		Transport: TransportInProc,
		BoardCfg:  board.DefaultConfig(),
		AppCfg:    DefaultAppConfig(),
	}
}

// budget returns the cycle bound for the run.
func (rc RunConfig) budget() uint64 {
	if rc.MaxCycles != 0 {
		return rc.MaxCycles
	}
	return rc.TB.WorkCycles() + 8*rc.TSync + 20000
}

// RunResult collects every counter of one co-simulation run.
type RunResult struct {
	HW        hdlsim.DriverStats
	Router    Stats
	Consumers ConsumerStats
	App       AppStats
	Board     board.Stats
	Link      cosim.Metrics

	Generated     uint64
	Accuracy      float64 // forwarded / generated
	Wall          time.Duration
	BoardCycles   uint64
	BoardSWTicks  uint64
	SimCycles     uint64
	Conservation  error // non-nil if the accounting invariant failed
	TSync         uint64
	TransportKind TransportKind
	Mode          cosim.SyncMode
}

// String formats the headline numbers.
func (r RunResult) String() string {
	return fmt.Sprintf("Tsync=%d %s/%s: N=%d acc=%.1f%% wall=%v syncs=%d",
		r.TSync, r.TransportKind, r.Mode, r.Generated, 100*r.Accuracy, r.Wall, r.HW.SyncEvents)
}

// RunCoSim executes the full paper testbench: the HDL side under
// DriverSimulate on the calling goroutine, the virtual board on a second
// goroutine, linked by the chosen transport. It returns when the workload
// is injected and drained (or the cycle budget runs out).
func RunCoSim(rc RunConfig) (result RunResult, err error) {
	if rc.Obs != nil {
		rc.Obs.Counter("router_runs_started_total").Inc()
		active := rc.Obs.Gauge("router_active_runs")
		active.Add(1)
		defer func() {
			active.Add(-1)
			if err != nil {
				rc.Obs.Counter("router_runs_failed_total").Inc()
				return
			}
			rc.Obs.Counter("router_runs_completed_total").Inc()
			rc.Obs.Gauge("router_last_accuracy_pct").Set(100 * result.Accuracy)
			rc.Obs.Gauge("router_last_wall_seconds").Set(result.Wall.Seconds())
			rc.Obs.Gauge("router_last_generated_packets").Set(float64(result.Generated))
			rc.Obs.Gauge("router_last_sync_events").Set(float64(result.HW.SyncEvents))
			rc.Obs.Gauge("router_last_tsync").Set(float64(result.TSync))
		}()
	}
	res := RunResult{TSync: rc.TSync, TransportKind: rc.Transport, Mode: rc.Mode}
	tb := BuildTestbench(rc.TB)
	bs, err := BuildBoardSide(rc.BoardCfg, rc.AppCfg)
	if err != nil {
		return res, err
	}

	var hwT, boardT cosim.Transport
	switch rc.Transport {
	case TransportTCP:
		ln, err := cosim.ListenTCP("127.0.0.1:0")
		if err != nil {
			return res, err
		}
		defer ln.Close()
		acc := make(chan error, 1)
		go func() {
			var aerr error
			hwT, aerr = ln.Accept()
			acc <- aerr
		}()
		boardT, err = cosim.DialTCP(ln.Addr())
		if err != nil {
			return res, err
		}
		if err := <-acc; err != nil {
			return res, err
		}
	default:
		hwT, boardT = cosim.NewInProcPair(4096)
	}
	defer hwT.Close()
	defer boardT.Close()
	if rc.LinkDelay > 0 {
		hwT = cosim.NewDelayTransport(hwT, rc.LinkDelay)
		boardT = cosim.NewDelayTransport(boardT, rc.LinkDelay)
	}
	if rc.Chaos != nil {
		// Distinct seeds give the two directions independent fault streams.
		hwT = cosim.NewChaosTransport(hwT, *rc.Chaos)
		boardT = cosim.NewChaosTransport(boardT, rc.Chaos.WithSeed(rc.Chaos.Seed+0x5eed))
	}
	if rc.Resilience != nil {
		hwS := cosim.NewSessionTransport(hwT, *rc.Resilience)
		boardS := cosim.NewSessionTransport(boardT, *rc.Resilience)
		hwT, boardT = hwS, boardS
		defer hwS.Close()
		defer boardS.Close()
	}

	hw := cosim.NewHWEndpoint(hwT, rc.Mode)
	bep := cosim.NewBoardEndpoint(boardT)
	if rc.Obs != nil {
		hw.Observe(rc.Obs)
		bep.Observe(rc.Obs)
	}
	bs.Dev.Attach(bep)

	boardDone := make(chan error, 1)
	go func() { boardDone <- bs.Board.Run(bep) }()

	start := time.Now()
	hwStats, err := tb.Sim.DriverSimulate(tb.Clk, hw, hdlsim.DriverConfig{
		TSync:       rc.TSync,
		TotalCycles: rc.budget(),
		StopEarly:   tb.Finished,
	})
	res.Wall = time.Since(start)
	if err != nil {
		hwT.Close()
		<-boardDone
		return res, fmt.Errorf("router: hw side: %w", err)
	}
	if err := <-boardDone; err != nil {
		return res, fmt.Errorf("router: board side: %w", err)
	}

	res.HW = hwStats
	res.Router = tb.Router.Stats()
	res.Consumers = tb.ConsumerTotals()
	res.App = bs.App.Stats()
	res.Board = bs.Board.Stats()
	res.Link = *hw.Metrics()
	res.Generated = tb.Generated()
	res.SimCycles = hwStats.Cycles
	res.BoardCycles, res.BoardSWTicks = hw.BoardTime()
	if res.Generated > 0 {
		res.Accuracy = float64(res.Router.Forwarded) / float64(res.Generated)
	}
	res.Conservation = tb.CheckConservation(res.App.Overruns, res.App.MboxDrops)
	return res, nil
}

// RunLoopback executes the same HDL workload against the instant local
// verifier — the paper's "simulation without synchronization" normalizer.
func RunLoopback(tbc TBConfig) (RunResult, error) {
	res := RunResult{TSync: 0, TransportKind: TransportInProc}
	tb := BuildTestbench(tbc)
	ep := NewLoopbackEndpoint()
	budget := tbc.WorkCycles() + 20000
	start := time.Now()
	hwStats, err := tb.Sim.DriverSimulate(tb.Clk, ep, hdlsim.DriverConfig{
		// Sync is free on the loopback; a moderate interval just gives
		// StopEarly a chance to end the run at quiescence.
		TSync:       1000,
		TotalCycles: budget,
		StopEarly:   tb.Finished,
	})
	res.Wall = time.Since(start)
	if err != nil {
		return res, err
	}
	res.HW = hwStats
	res.Router = tb.Router.Stats()
	res.Consumers = tb.ConsumerTotals()
	res.Generated = tb.Generated()
	res.SimCycles = hwStats.Cycles
	if res.Generated > 0 {
		res.Accuracy = float64(res.Router.Forwarded) / float64(res.Generated)
	}
	res.Conservation = tb.CheckConservation(0, 0)
	return res, nil
}
