package router

import (
	"context"
)

// MultiRunResult extends RunResult with per-board application statistics.
type MultiRunResult struct {
	RunResult
	Apps        []AppStats
	BoardCycles []uint64
}

// RunCoSimMulti executes the testbench with `boards` virtual boards, each
// serving one of the router's checksum engines through its own
// three-channel link — the multi-processor extension of the framework
// (paper refs [19],[20]). Packets are assigned to engines round-robin, so
// the verification load splits evenly across boards.
//
// Since the federation redesign this is a thin veneer over the
// hierarchical time manager: RunFederation with an in-process-transport
// link per board. Only the in-process transport is wired here (the
// standalone binaries cover the cross-process case); use RunFederation
// directly for other transports, pulse devices, or in-process board
// hosting.
func RunCoSimMulti(rc RunConfig, boards int) (MultiRunResult, error) {
	// The multi-board rig always wires its links in-process (see the doc
	// comment), so both the links and the result say so — echoing
	// rc.Transport here used to mislabel these runs whenever a caller
	// left a TCP default in the config.
	rc.Transport = TransportInProc
	rc.Federation = &FederationConfig{Boards: boards}
	res, err := runFederation(context.Background(), rc, Transports{})
	return res.MultiRunResult, err
}
