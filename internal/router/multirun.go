package router

import (
	"fmt"
	"time"

	"repro/internal/cosim"
	"repro/internal/hdlsim"
)

// MultiRunResult extends RunResult with per-board application statistics.
type MultiRunResult struct {
	RunResult
	Apps        []AppStats
	BoardCycles []uint64
}

// RunCoSimMulti executes the testbench with `boards` virtual boards, each
// serving one of the router's checksum engines through its own
// three-channel link — the multi-processor extension of the framework
// (paper refs [19],[20]). Packets are assigned to engines round-robin, so
// the verification load splits evenly across boards. Only the in-process
// transport is supported (the standalone binaries cover the TCP case for
// one board).
func RunCoSimMulti(rc RunConfig, boards int) (MultiRunResult, error) {
	if boards < 1 {
		return MultiRunResult{}, fmt.Errorf("router: need at least one board")
	}
	// The multi-board rig always wires its links with NewInProcPair (see
	// the doc comment), so the result says so — echoing rc.Transport here
	// used to mislabel these runs whenever a caller left a TCP default in
	// the config.
	res := MultiRunResult{RunResult: RunResult{TSync: rc.TSync, TransportKind: TransportInProc, Mode: rc.Mode}}
	rc.TB.Engines = boards
	tb := BuildTestbench(rc.TB)

	multi := cosim.NewMultiHWEndpoint()
	var sides []*BoardSide
	var hwTs []cosim.Transport
	boardDone := make(chan error, boards)
	for i := 0; i < boards; i++ {
		acfg := rc.AppCfg
		acfg.Engine = i
		bs, err := BuildBoardSide(rc.BoardCfg, acfg)
		if err != nil {
			return res, err
		}
		hwT, boardT := cosim.NewInProcPair(4096)
		hwTs = append(hwTs, hwT)
		ep := cosim.NewHWEndpoint(hwT, cosim.SyncAlternating)
		if _, err := multi.AddBoard(ep, EngineBase(i), EngineStride); err != nil {
			return res, err
		}
		if err := multi.RouteIRQ(EngineIRQ(i), i); err != nil {
			return res, err
		}
		bep := cosim.NewBoardEndpoint(boardT)
		bs.Dev.Attach(bep)
		sides = append(sides, bs)
		go func(bs *BoardSide) { boardDone <- bs.Board.Run(bep) }(bs)
	}
	defer func() {
		for _, tr := range hwTs {
			tr.Close()
		}
	}()

	start := time.Now()
	hwStats, err := tb.Sim.DriverSimulate(tb.Clk, multi, hdlsim.DriverConfig{
		TSync:       rc.TSync,
		TotalCycles: rc.budget(),
		StopEarly:   tb.Finished,
	})
	res.Wall = time.Since(start)
	if err != nil {
		for _, tr := range hwTs {
			tr.Close()
		}
		for i := 0; i < boards; i++ {
			<-boardDone
		}
		return res, fmt.Errorf("router: hw side: %w", err)
	}
	for i := 0; i < boards; i++ {
		if err := <-boardDone; err != nil {
			return res, fmt.Errorf("router: a board failed: %w", err)
		}
	}

	res.HW = hwStats
	res.Router = tb.Router.Stats()
	res.Consumers = tb.ConsumerTotals()
	res.Generated = tb.Generated()
	res.SimCycles = hwStats.Cycles
	var overruns, mboxDrops uint64
	for i, bs := range sides {
		st := bs.App.Stats()
		res.Apps = append(res.Apps, st)
		overruns += st.Overruns
		mboxDrops += st.MboxDrops
		cy, _ := multi.Member(i).BoardTime()
		res.BoardCycles = append(res.BoardCycles, cy)
	}
	if res.Generated > 0 {
		res.Accuracy = float64(res.Router.Forwarded) / float64(res.Generated)
	}
	res.Conservation = tb.CheckConservation(overruns, mboxDrops)
	return res, nil
}
