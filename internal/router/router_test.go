package router

import (
	"context"
	"testing"

	"repro/internal/cosim"
	"repro/internal/hdlsim"
)

func smallTB() TBConfig {
	cfg := DefaultTBConfig()
	cfg.PacketsPerPort = 10
	cfg.Period = 400
	return cfg
}

func TestLoopbackAllForwarded(t *testing.T) {
	res, err := RunLoopback(smallTB())
	if err != nil {
		t.Fatal(err)
	}
	if res.Conservation != nil {
		t.Fatal(res.Conservation)
	}
	if res.Generated != 40 {
		t.Fatalf("generated %d, want 40", res.Generated)
	}
	if res.Router.Forwarded != res.Generated {
		t.Fatalf("forwarded %d of %d with an instant checker: %+v",
			res.Router.Forwarded, res.Generated, res.Router)
	}
	if res.Consumers.Received != res.Generated {
		t.Fatalf("consumers saw %d", res.Consumers.Received)
	}
	if res.Consumers.IntegrityError != 0 || res.Consumers.Misrouted != 0 {
		t.Fatalf("consumer errors: %+v", res.Consumers)
	}
	if res.Accuracy != 1.0 {
		t.Fatalf("accuracy %f", res.Accuracy)
	}
}

func TestLoopbackDropsCorruptPackets(t *testing.T) {
	cfg := smallTB()
	cfg.ErrRate = 0.5
	cfg.Seed = 99
	res, err := RunLoopback(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs := res.Router
	if rs.DroppedChecksum == 0 {
		t.Fatalf("errRate 0.5 produced no checksum drops: %+v", rs)
	}
	if rs.Forwarded+rs.DroppedChecksum != res.Generated {
		t.Fatalf("forwarded %d + dropped %d ≠ generated %d", rs.Forwarded, rs.DroppedChecksum, res.Generated)
	}
	// Consumers only see intact packets.
	if res.Consumers.IntegrityError != 0 {
		t.Fatalf("corrupt packet reached a consumer")
	}
}

func TestRoutingTableOverride(t *testing.T) {
	cfg := smallTB()
	tb := BuildTestbench(cfg)
	// Route everything to port 3, rebuild consumers' expectations via
	// RouteOf (consumers capture the function, so this works).
	for d := uint16(0); d < 4; d++ {
		tb.Router.SetRoute(d, 3)
	}
	ep := NewLoopbackEndpoint()
	if _, err := tb.Sim.DriverSimulate(tb.Clk, ep, hdlsimCfg(cfg)); err != nil {
		t.Fatal(err)
	}
	if got := tb.Consumers[3].Stats().Received; got != tb.Generated() {
		t.Fatalf("port 3 received %d of %d", got, tb.Generated())
	}
	for i := 0; i < 3; i++ {
		if tb.Consumers[i].Stats().Received != 0 {
			t.Fatalf("port %d received traffic despite override", i)
		}
	}
	if tb.ConsumerTotals().Misrouted != 0 {
		t.Fatal("consumers flagged misroutes for the overridden table")
	}
}

func TestFIFOOverflowDropsWhenCheckerStalls(t *testing.T) {
	cfg := smallTB()
	cfg.PacketsPerPort = 20
	cfg.Period = 50 // very fast arrivals
	tb := BuildTestbench(cfg)
	ep := NewLoopbackEndpoint()
	ep.ResponseDelay = 100000 // verdicts effectively never return
	c := hdlsimCfg(cfg)
	c.StopEarly = nil
	c.TotalCycles = cfg.WorkCycles() + 1000
	if _, err := tb.Sim.DriverSimulate(tb.Clk, ep, c); err != nil {
		t.Fatal(err)
	}
	rs := tb.Router.Stats()
	if rs.DroppedFull == 0 {
		t.Fatalf("no overflow drops with a stalled checker: %+v", rs)
	}
	// 4 FIFOs × 8 slots stay occupied; everything else must drop.
	wantBuffered := uint64(4 * cfg.FIFOCap)
	if rs.Received-rs.DroppedFull != wantBuffered {
		t.Fatalf("buffered %d, want %d", rs.Received-rs.DroppedFull, wantBuffered)
	}
}

func TestCoSimEndToEndInProc(t *testing.T) {
	rc := DefaultRunConfig()
	rc.TB = smallTB()
	rc.TSync = 200
	res, err := Run(context.Background(), Transports{}, WithConfig(rc))
	if err != nil {
		t.Fatal(err)
	}
	if res.Conservation != nil {
		t.Fatal(res.Conservation)
	}
	if res.Generated != 40 {
		t.Fatalf("generated %d", res.Generated)
	}
	if res.Accuracy != 1.0 {
		t.Fatalf("tight coupling accuracy %.3f, want 1.0 (stats %+v, app %+v)",
			res.Accuracy, res.Router, res.App)
	}
	if res.App.Verified != 40 || res.App.Corrupt != 0 {
		t.Fatalf("app stats %+v", res.App)
	}
	if res.BoardCycles == 0 || res.BoardSWTicks == 0 {
		t.Fatal("board time did not advance")
	}
	if res.HW.SyncEvents == 0 || res.Link.SyncEvents != res.HW.SyncEvents {
		t.Fatalf("sync accounting mismatch: %d vs %d", res.HW.SyncEvents, res.Link.SyncEvents)
	}
}

func TestCoSimEndToEndTCP(t *testing.T) {
	rc := DefaultRunConfig()
	rc.TB = smallTB()
	rc.TSync = 500
	rc.Transport = TransportTCP
	res, err := Run(context.Background(), Transports{}, WithConfig(rc))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy != 1.0 {
		t.Fatalf("TCP accuracy %.3f (router %+v)", res.Accuracy, res.Router)
	}
}

func TestCoSimDeterministicAcrossTransports(t *testing.T) {
	mk := func(tr TransportKind, mode cosim.SyncMode) RunResult {
		rc := DefaultRunConfig()
		rc.TB = smallTB()
		rc.TSync = 300
		rc.Transport = tr
		rc.Mode = mode
		res, err := Run(context.Background(), Transports{}, WithConfig(rc))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := mk(TransportInProc, cosim.SyncAlternating)
	tcp := mk(TransportTCP, cosim.SyncAlternating)
	if ref.Router != tcp.Router {
		t.Fatalf("router stats differ across transports:\ninproc %+v\ntcp    %+v", ref.Router, tcp.Router)
	}
	if ref.BoardCycles != tcp.BoardCycles || ref.BoardSWTicks != tcp.BoardSWTicks {
		t.Fatalf("board time differs across transports: %d/%d vs %d/%d",
			ref.BoardCycles, ref.BoardSWTicks, tcp.BoardCycles, tcp.BoardSWTicks)
	}
	// Pipelined mode is also deterministic run-to-run (but may differ from
	// alternating by design: +1 quantum of board→HW latency).
	p1 := mk(TransportInProc, cosim.SyncPipelined)
	p2 := mk(TransportTCP, cosim.SyncPipelined)
	if p1.Router != p2.Router {
		t.Fatalf("pipelined results differ across transports:\n%+v\n%+v", p1.Router, p2.Router)
	}
}

func TestCoSimCorruptPacketsDropped(t *testing.T) {
	rc := DefaultRunConfig()
	rc.TB = smallTB()
	rc.TB.ErrRate = 0.4
	rc.TB.Seed = 7
	rc.TSync = 200
	res, err := Run(context.Background(), Transports{}, WithConfig(rc))
	if err != nil {
		t.Fatal(err)
	}
	if res.App.Corrupt == 0 || res.Router.DroppedChecksum != res.App.Corrupt {
		t.Fatalf("corrupt accounting: app %+v router %+v", res.App, res.Router)
	}
	if res.Consumers.IntegrityError != 0 {
		t.Fatal("corrupt packet forwarded")
	}
	if res.Router.Forwarded+res.Router.DroppedChecksum != res.Generated {
		t.Fatalf("accounting: %+v vs %d", res.Router, res.Generated)
	}
}

func TestCoSimAnnotatedTimingModel(t *testing.T) {
	rc := DefaultRunConfig()
	rc.TB = smallTB()
	rc.TSync = 200
	rc.AppCfg.Timing = TimingAnnotated
	res, err := Run(context.Background(), Transports{}, WithConfig(rc))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy != 1.0 {
		t.Fatalf("annotated accuracy %.3f", res.Accuracy)
	}
	if res.App.ISSCycles != 0 {
		t.Fatal("annotated model ran the ISS")
	}
}

func TestCoSimAccuracyDegradesWithLooseCoupling(t *testing.T) {
	// The headline Fig.7 mechanism at test scale: tight coupling forwards
	// everything; a huge quantum forces drops.
	tight := DefaultRunConfig()
	tight.TB = smallTB()
	tight.TSync = 100
	resT, err := Run(context.Background(), Transports{}, WithConfig(tight))
	if err != nil {
		t.Fatal(err)
	}
	loose := DefaultRunConfig()
	loose.TB = smallTB()
	loose.TSync = 6000
	resL, err := Run(context.Background(), Transports{}, WithConfig(loose))
	if err != nil {
		t.Fatal(err)
	}
	if resT.Accuracy != 1.0 {
		t.Fatalf("tight accuracy %.3f", resT.Accuracy)
	}
	if resL.Accuracy >= resT.Accuracy {
		t.Fatalf("loose coupling did not degrade accuracy: tight %.3f loose %.3f (router %+v)",
			resT.Accuracy, resL.Accuracy, resL.Router)
	}
	if resL.Router.DroppedFull == 0 {
		t.Fatalf("loose coupling produced no overflow drops: %+v", resL.Router)
	}
}

func TestCoSimFewerSyncsWithLargerTsync(t *testing.T) {
	run := func(ts uint64) RunResult {
		rc := DefaultRunConfig()
		rc.TB = smallTB()
		rc.TSync = ts
		res, err := Run(context.Background(), Transports{}, WithConfig(rc))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	small := run(50)
	large := run(1000)
	if small.HW.SyncEvents <= large.HW.SyncEvents {
		t.Fatalf("sync events: Tsync=50 → %d, Tsync=1000 → %d", small.HW.SyncEvents, large.HW.SyncEvents)
	}
	ratio := float64(small.HW.SyncEvents) / float64(large.HW.SyncEvents)
	if ratio < 10 {
		t.Fatalf("sync-event ratio %.1f, want ≈20×", ratio)
	}
}

func TestSlotAddrWrapsRing(t *testing.T) {
	seen := map[uint32]bool{}
	for seq := uint32(1); seq <= NumSlots; seq++ {
		a := SlotAddr(seq)
		if a < SlotBase || a+SlotWords > WindowSize {
			t.Fatalf("slot %d at %#x outside window", seq, a)
		}
		if seen[a] {
			t.Fatalf("slot collision within one ring period at %#x", a)
		}
		seen[a] = true
	}
	if SlotAddr(1) != SlotAddr(1+NumSlots) {
		t.Fatal("ring does not wrap")
	}
}

// hdlsimCfg builds a DriverConfig for direct testbench runs.
func hdlsimCfg(cfg TBConfig) hdlsim.DriverConfig {
	return hdlsim.DriverConfig{
		TSync:       1000,
		TotalCycles: cfg.WorkCycles() + 20000,
	}
}
