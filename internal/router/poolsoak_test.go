package router

import (
	"context"
	"testing"
	"time"

	"repro/internal/cosim"
)

// TestChaosAdaptivePoolSoak is the pooled wire path's integration soak:
// a chaos-injured, session-healed, batch-coalesced, adaptively elongated
// run exercises every buffer-recycling path at once — pooled batch
// bodies, ack-recycled session envelopes, chaos clones of both, and the
// codec pools on each decode. The run must stay bit-identical to a plain
// fault-free run, and the adaptive rendezvous accounting must balance:
// every TSync boundary is either synced or provably elided, so
// plain.SyncEvents == adaptive.SyncEvents + adaptive.SyncsElided.
// A recycled buffer handed to two owners shows up here as divergence.
func TestChaosAdaptivePoolSoak(t *testing.T) {
	mk := func(adaptive bool, chaos bool) RunConfig {
		rc := DefaultRunConfig()
		rc.TB = smallTB()
		rc.TB.PacketsPerPort = 20
		rc.TB.Period = 4000 // sparse traffic: idle TSync boundaries to elide
		rc.TSync = 200
		rc.Adaptive = adaptive
		rc.Batch = adaptive
		if chaos {
			sc := cosim.UniformScenario(42, cosim.FaultProfile{
				Drop: 0.05, Duplicate: 0.05, Reorder: 0.05, Corrupt: 0.05, Truncate: 0.02,
			})
			sess := cosim.DefaultSessionConfig()
			sess.RetransmitTimeout = 5 * time.Millisecond
			rc.Chaos = &sc
			rc.Resilience = &sess
		}
		return rc
	}
	run := func(rc RunConfig) RunResult {
		t.Helper()
		res, err := Run(context.Background(), Transports{}, WithConfig(rc))
		if err != nil {
			t.Fatal(err)
		}
		if res.Conservation != nil {
			t.Fatal(res.Conservation)
		}
		return res
	}

	plain := run(mk(false, false))
	soak := run(mk(true, true))

	if plain.Router != soak.Router || plain.BoardCycles != soak.BoardCycles ||
		plain.BoardSWTicks != soak.BoardSWTicks || plain.SimCycles != soak.SimCycles {
		t.Fatalf("chaos+adaptive+pool run diverged from plain:\nplain %+v board %d/%d hw %d\nsoak  %+v board %d/%d hw %d",
			plain.Router, plain.BoardCycles, plain.BoardSWTicks, plain.SimCycles,
			soak.Router, soak.BoardCycles, soak.BoardSWTicks, soak.SimCycles)
	}
	if plain.HW.SyncEvents != soak.HW.SyncEvents+soak.HW.SyncsElided {
		t.Fatalf("rendezvous accounting broken: plain %d syncs, soak %d synced + %d elided",
			plain.HW.SyncEvents, soak.HW.SyncEvents, soak.HW.SyncsElided)
	}
	if soak.HW.SyncsElided == 0 {
		t.Fatal("adaptive soak elided nothing: the elongation path was not exercised")
	}
	if soak.Link.Link.FramesInjured == 0 {
		t.Fatal("chaos injured nothing: the fault paths were not exercised")
	}
	if soak.Link.Link.Retransmits == 0 {
		t.Fatal("session retransmitted nothing: the recovery paths were not exercised")
	}
}
