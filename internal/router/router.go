package router

import (
	"fmt"

	"repro/internal/hdlsim"
	"repro/internal/packet"
)

// Stats counts router activity. Conservation invariant:
//
//	Generated = Forwarded + DroppedFull + DroppedChecksum + Buffered
//
// where Buffered covers packets still in input FIFOs (including those
// whose verdicts were lost to board-side overruns and never return).
// Forwarded counts unique packets accepted for forwarding; Delivered
// counts the copies actually placed on output ports (Delivered >
// Forwarded exactly when multicast traffic is present).
type Stats struct {
	Received        uint64 // packets that arrived on input ports
	Forwarded       uint64 // unique packets accepted for forwarding
	Delivered       uint64 // copies placed on output ports
	DroppedFull     uint64 // arrived while the input FIFO was full
	DroppedChecksum uint64 // board reported a bad checksum
	PostedToBoard   uint64 // packets delivered to the RX ring
	Verdicts        uint64 // verdicts processed
}

// fifoEntry is one buffered packet; the slot is freed when the verdict
// arrives. seq is the router-global arrival number (used for round-robin
// engine assignment); engineSeq is assigned when the packet is posted and
// is local to that engine's RX ring.
type fifoEntry struct {
	seq       uint32
	pkt       *packet.Packet
	posted    bool
	engine    int
	engineSeq uint32
}

// Router is the 4-port (configurable) router model. It holds one bounded
// FIFO per input port, a routing table, and the driver ports through which
// the board's checksum application validates every packet.
type Router struct {
	hdlsim.BaseModule

	sim   *hdlsim.Simulator
	clk   *hdlsim.Clock
	ports int

	In  []*hdlsim.Signal[*packet.Packet]
	Out []*hdlsim.Signal[*packet.Packet]

	fifoCap int
	fifos   [][]fifoEntry
	txq     [][]*packet.Packet // verified packets awaiting an output slot

	routes map[uint16]int // destination address → output port

	engines []*chkEngine
	nextSeq uint32

	stats Stats
}

// chkEngine is one checksum-offload engine: a driver_in for verdicts, a
// driver_out RX ring, and the bookkeeping of packets awaiting a verdict.
// A single-board setup has one engine; multi-board setups give each board
// its own engine window (see EngineBase/EngineIRQ).
type chkEngine struct {
	idx  int
	base uint32
	din  *hdlsim.DriverIn
	dout *hdlsim.DriverOut

	outstanding map[uint32]outPkt
	nextSeq     uint32 // engine-local sequence counter
	pendingSeq  uint32 // verdict parser state: seq word seen, OK pending
	haveSeq     bool
}

type outPkt struct {
	pkt *packet.Packet
}

// Config parameterizes the router model.
type Config struct {
	// Ports is the number of input (and output) ports; the paper uses 4.
	Ports int
	// FIFOCap is the per-input buffer capacity in packets.
	FIFOCap int
	// Engines is the number of checksum-offload engines (boards serving
	// verification); packets are assigned round-robin by sequence number.
	// 0 means 1.
	Engines int
}

// DefaultConfig matches the experiments' setup.
func DefaultConfig() Config { return Config{Ports: 4, FIFOCap: 8, Engines: 1} }

// New builds the router, creating its port signals and driver ports on the
// given simulator.
func New(s *hdlsim.Simulator, clk *hdlsim.Clock, cfg Config) *Router {
	if cfg.Ports < 1 {
		panic("router: need at least one port")
	}
	if cfg.FIFOCap < 1 {
		panic("router: FIFO capacity must be ≥ 1")
	}
	if cfg.Engines < 1 {
		cfg.Engines = 1
	}
	r := &Router{
		BaseModule: hdlsim.BaseModule{Name: "router"},
		sim:        s,
		clk:        clk,
		ports:      cfg.Ports,
		fifoCap:    cfg.FIFOCap,
		fifos:      make([][]fifoEntry, cfg.Ports),
		txq:        make([][]*packet.Packet, cfg.Ports),
		routes:     make(map[uint16]int),
	}
	for i := 0; i < cfg.Ports; i++ {
		r.In = append(r.In, hdlsim.NewSignal[*packet.Packet](s, fmt.Sprintf("router.in%d", i)))
		r.Out = append(r.Out, hdlsim.NewSignal[*packet.Packet](s, fmt.Sprintf("router.out%d", i)))
	}
	for e := 0; e < cfg.Engines; e++ {
		eng := &chkEngine{idx: e, base: EngineBase(e), outstanding: make(map[uint32]outPkt)}
		eng.din = s.NewDriverIn(fmt.Sprintf("router.verdict_in%d", e),
			eng.base+RegVerdictBase, VerdictWords)
		eng.dout = s.NewDriverOut(fmt.Sprintf("router.rx_out%d", e),
			eng.base+RegRxSeq, WindowSize-RegRxSeq)
		r.engines = append(r.engines, eng)
		s.DriverProcess(fmt.Sprintf("router.driver%d", e),
			func() { r.onVerdictData(eng) }, eng.din)
	}

	for i := 0; i < cfg.Ports; i++ {
		i := i
		s.Method(fmt.Sprintf("router.input%d", i), func() { r.onInput(i) },
			r.In[i].Changed()).DontInitialize()
	}
	s.Method("router.main", r.mainCycle, clk.Posedge()).DontInitialize()
	return r
}

// SetRoute maps a destination address to an output port (the "routing
// table embedded into the router").
func (r *Router) SetRoute(dst uint16, port int) {
	if port < 0 || port >= r.ports {
		panic(fmt.Sprintf("router: route to invalid port %d", port))
	}
	r.routes[dst] = port
}

// RouteOf returns the output port for a destination (default: dst mod
// ports, so small testbenches work without explicit table setup).
func (r *Router) RouteOf(dst uint16) int {
	if p, ok := r.routes[dst]; ok {
		return p
	}
	return int(dst) % r.ports
}

// Stats returns a snapshot of the counters.
func (r *Router) Stats() Stats { return r.stats }

// InFlight returns unique packets currently buffered in input FIFOs
// (awaiting post or verdict). Copies queued on output ports are already
// counted as Forwarded.
func (r *Router) InFlight() int {
	n := 0
	for _, f := range r.fifos {
		n += len(f)
	}
	return n
}

// txPending reports whether any output queue still holds copies.
func (r *Router) txPending() bool {
	for _, q := range r.txq {
		if len(q) > 0 {
			return true
		}
	}
	return false
}

// outstandingCount sums packets awaiting verdicts across engines.
func (r *Router) outstandingCount() int {
	n := 0
	for _, eng := range r.engines {
		n += len(eng.outstanding)
	}
	return n
}

// IRQPending reports whether any buffered packet is still waiting to be
// posted to an engine window — the only condition under which the router
// raises a board interrupt on an upcoming cycle without new input traffic.
func (r *Router) IRQPending() bool {
	for _, f := range r.fifos {
		for _, e := range f {
			if !e.posted {
				return true
			}
		}
	}
	return false
}

// Quiescent reports whether no packet is buffered, awaiting a verdict, or
// awaiting an output slot.
func (r *Router) Quiescent() bool {
	return r.InFlight() == 0 && r.outstandingCount() == 0 && !r.txPending()
}

// onInput handles a new packet on input port i: buffer it, or drop it if
// the buffer is full ("whenever a new packet arrives … it is stored into
// an internal buffer; if the buffer is full, the packet is dropped").
func (r *Router) onInput(i int) {
	p := r.In[i].Read()
	if p == nil {
		return
	}
	r.stats.Received++
	if len(r.fifos[i]) >= r.fifoCap {
		r.stats.DroppedFull++
		return
	}
	r.nextSeq++
	r.fifos[i] = append(r.fifos[i], fifoEntry{seq: r.nextSeq, pkt: p})
}

// mainCycle runs once per clock cycle: it posts newly buffered packets to
// their engine's RX ring (bounded by the ring depth) and drains verified
// packets to the output ports, one per port per cycle.
func (r *Router) mainCycle() {
	// Post pending packets, round-robin across inputs.
	for i := 0; i < r.ports; i++ {
		for j := range r.fifos[i] {
			e := &r.fifos[i][j]
			if e.posted {
				continue
			}
			eng := r.engines[int(e.seq)%len(r.engines)]
			if len(eng.outstanding) >= NumSlots {
				continue // that engine's ring is full; try others
			}
			r.postPacket(eng, e)
		}
	}
	// Drain one verified copy per output port per cycle.
	for o := 0; o < r.ports; o++ {
		if len(r.txq[o]) == 0 {
			continue
		}
		p := r.txq[o][0]
		r.txq[o] = r.txq[o][1:]
		r.Out[o].Write(p)
		r.stats.Delivered++
	}
}

// postPacket writes the packet into the engine's RX slot, bumps the
// engine's sequence register and raises its packet interrupt.
func (r *Router) postPacket(eng *chkEngine, e *fifoEntry) {
	eng.nextSeq++
	eseq := eng.nextSeq
	words := e.pkt.Encode()
	slot := make([]uint32, 0, len(words)+1)
	slot = append(slot, uint32(len(words)))
	slot = append(slot, words...)
	addr := eng.base + SlotAddr(eseq)
	for i, w := range slot {
		eng.dout.Set(addr+uint32(i), w)
	}
	eng.dout.Post(addr, slot)
	eng.dout.Set(eng.base+RegRxSeq, eseq)
	eng.dout.Post(eng.base+RegRxSeq, []uint32{eseq})
	r.sim.RaiseDriverInterrupt(EngineIRQ(eng.idx))
	eng.outstanding[eseq] = outPkt{pkt: e.pkt}
	e.posted = true
	e.engine = eng.idx
	e.engineSeq = eseq
	r.stats.PostedToBoard++
}

// onVerdictData is the driver_process: it parses verdict blocks written by
// the engine's board ([seq, ok] word pairs) and forwards or drops.
func (r *Router) onVerdictData(eng *chkEngine) {
	for {
		w, ok := eng.din.Pop()
		if !ok {
			return
		}
		switch w.Addr - eng.base {
		case RegVerdictBase:
			eng.pendingSeq = w.Val
			eng.haveSeq = true
		case RegVerdictOK:
			if !eng.haveSeq {
				continue // stray OK word; protocol error tolerated
			}
			eng.haveSeq = false
			r.verdict(eng, eng.pendingSeq, w.Val != 0)
		}
	}
}

func (r *Router) verdict(eng *chkEngine, seq uint32, valid bool) {
	o, ok := eng.outstanding[seq]
	if !ok {
		return // duplicate or unknown verdict
	}
	delete(eng.outstanding, seq)
	r.stats.Verdicts++
	// Free the FIFO slot.
	for i := range r.fifos {
		for j := range r.fifos[i] {
			fe := &r.fifos[i][j]
			if fe.posted && fe.engine == eng.idx && fe.engineSeq == seq {
				r.fifos[i] = append(r.fifos[i][:j], r.fifos[i][j+1:]...)
				break
			}
		}
	}
	if !valid {
		r.stats.DroppedChecksum++
		return
	}
	r.stats.Forwarded++
	if o.pkt.IsMulticast() {
		mask := o.pkt.PortMask()
		for port := 0; port < r.ports; port++ {
			if mask&(1<<port) != 0 {
				r.txq[port] = append(r.txq[port], o.pkt)
			}
		}
		return
	}
	port := r.RouteOf(o.pkt.Dst)
	r.txq[port] = append(r.txq[port], o.pkt)
}
