package router

import (
	"context"
	"fmt"
	"time"

	"repro/internal/board"
	"repro/internal/cosim"
	"repro/internal/cosim/federation"
	"repro/internal/hdlsim"
	"repro/internal/sim"
)

// Pulse-device register map: auxiliary HDL kernels beyond the router
// testbench occupy windows far above the engine strides, one per device,
// each with a heartbeat counter register pair and a private interrupt
// line.
const (
	PulseBase0  = 0x8000
	PulseStride = 0x10
	PulseIRQ0   = 16
)

// PulseBase returns the window base of auxiliary pulse device p.
func PulseBase(p int) uint32 { return PulseBase0 + uint32(p)*PulseStride }

// PulseIRQ returns the interrupt line of auxiliary pulse device p.
func PulseIRQ(p int) uint8 { return uint8(PulseIRQ0 + p) }

// FederationConfig describes an N-party topology for the router
// testbench: one router HDL kernel serving Boards virtual boards (one
// checksum engine each), plus optional auxiliary pulse-device kernels —
// all coordinated by the hierarchical time manager
// (internal/cosim/federation) instead of the fixed pairwise loop.
type FederationConfig struct {
	// Boards is the number of board parties; board i serves checksum
	// engine i through its own link. Must be ≥ 1.
	Boards int
	// InProcBoards hosts the boards in-process as board.Federate parties
	// (no goroutines, no wire). When false each board runs behind a
	// cosim.ProcFederate speaking the v2 wire protocol over the
	// RunConfig's TransportKind.
	InProcBoards bool
	// PulseDevices adds that many auxiliary HDL kernels, each
	// periodically posting a heartbeat counter into a private window on
	// board 0 and raising its interrupt line — the "several HDL kernels
	// on one virtual clock" topology.
	PulseDevices int
	// PulsePeriod is the heartbeat period in clock cycles (0 means
	// 4×TSync).
	PulsePeriod uint64
	// LinkStack appends transport-stack layers to every wire board link,
	// on top of the RunConfig's stack fields (later wins — see
	// cosim.StackOption).
	LinkStack []cosim.StackOption
}

// Validate rejects incoherent federation topologies.
func (fc FederationConfig) Validate() error {
	if fc.Boards < 1 {
		return fmt.Errorf("router: invalid FederationConfig: %d boards — a federation needs at least one board party", fc.Boards)
	}
	if fc.PulseDevices < 0 {
		return fmt.Errorf("router: invalid FederationConfig: negative PulseDevices")
	}
	if fc.PulseDevices > 0 && EngineBase(fc.Boards) > PulseBase0 {
		return fmt.Errorf("router: invalid FederationConfig: %d engine windows collide with the pulse windows at %#x", fc.Boards, PulseBase0)
	}
	if fc.InProcBoards && len(fc.LinkStack) > 0 {
		return fmt.Errorf("router: invalid FederationConfig: LinkStack configured but InProcBoards leaves no wire links to stack it on")
	}
	return nil
}

// FederationResult extends the multi-board result with the federation
// schedule and the auxiliary pulse devices' delivery counters.
type FederationResult struct {
	MultiRunResult
	// Fed is the time manager's schedule accounting.
	Fed federation.Stats
	// PulseSent/PulseSeen count, per pulse device, heartbeats emitted by
	// the device kernel and observed by board 0's DSR. Equal counts show
	// the routed exchange delivered every event.
	PulseSent []uint64
	PulseSeen []uint64
}

// pulseDevice is an auxiliary HDL kernel: every period cycles it posts
// an incrementing heartbeat counter into its board window and raises its
// IRQ. Its next emission is on a closed-form schedule, so it promises an
// exact interrupt lookahead for adaptive elongation.
type pulseDevice struct {
	sim   *hdlsim.Simulator
	clk   *hdlsim.Clock
	count uint64
	next  uint64
	cycle uint64
}

func newPulseDevice(p int, period uint64, clockPeriod sim.Time) *pulseDevice {
	s := hdlsim.NewSimulator(fmt.Sprintf("pulse%d", p))
	d := &pulseDevice{sim: s, clk: s.NewClock("clk", clockPeriod), next: period}
	out := s.NewDriverOut("beat", PulseBase(p), 2)
	s.Method("pulse.main", func() {
		d.cycle++
		if d.cycle >= d.next {
			d.next += period
			d.count++
			out.Set(PulseBase(p), uint32(d.count))
			out.Set(PulseBase(p)+1, uint32(d.count>>32))
			out.Post(PulseBase(p), []uint32{uint32(d.count), uint32(d.count >> 32)})
			s.RaiseDriverInterrupt(PulseIRQ(p))
		}
	}, d.clk.Posedge()).DontInitialize()
	s.SetInterruptLookahead(func() uint64 {
		if d.next > d.cycle {
			return d.next - d.cycle
		}
		return 0
	})
	return d
}

// runFederation executes a federated topology; it is the N-party
// analogue of runOnTransports. The router kernel (and any pulse kernels)
// become eager cosim.SimFederate parties; each board becomes a granted
// party — in-process (board.Federate) or behind its own transport stack
// (cosim.ProcFederate) — and the time manager owns the quantum clock.
// Cancelling ctx tears the wire stacks down and stops the manager at the
// next boundary; the context's cause becomes the returned error.
func runFederation(ctx context.Context, rc RunConfig, tr Transports) (res FederationResult, err error) {
	fc := *rc.Federation
	res = FederationResult{MultiRunResult: MultiRunResult{RunResult: RunResult{TSync: rc.TSync, TransportKind: rc.Transport, Mode: rc.Mode}}}
	if fc.InProcBoards {
		res.TransportKind = TransportInProc
	}
	if err := fc.Validate(); err != nil {
		closeBoth(tr)
		return res, err
	}
	if err := rc.Validate(); err != nil {
		closeBoth(tr)
		return res, err
	}
	if tr.HW != nil && (fc.Boards != 1 || fc.InProcBoards) {
		closeBoth(tr)
		return res, fmt.Errorf("router: caller-provided Transports fit exactly one wire board link; this federation has %d (InProcBoards=%v)", fc.Boards, fc.InProcBoards)
	}
	if fc.PulsePeriod == 0 {
		fc.PulsePeriod = 4 * rc.TSync
	}
	if rc.Obs != nil {
		// The same run-level counters runOnTransports keeps, so a farm or
		// dashboard sees federated runs in the usual series.
		started := rc.Obs.Counter("router_runs_started_total")
		started.Inc()
		active := rc.Obs.Gauge("router_active_runs")
		active.Add(1)
		failed := rc.Obs.Counter("router_runs_failed_total")
		completed := rc.Obs.Counter("router_runs_completed_total")
		lastAccuracy := rc.Obs.Gauge("router_last_accuracy_pct")
		lastWall := rc.Obs.Gauge("router_last_wall_seconds")
		lastGenerated := rc.Obs.Gauge("router_last_generated_packets")
		lastSyncEvents := rc.Obs.Gauge("router_last_sync_events")
		lastTSync := rc.Obs.Gauge("router_last_tsync")
		defer func() {
			active.Add(-1)
			if err != nil {
				failed.Inc()
				return
			}
			completed.Inc()
			lastAccuracy.Set(100 * res.Accuracy)
			lastWall.Set(res.Wall.Seconds())
			lastGenerated.Set(float64(res.Generated))
			lastSyncEvents.Set(float64(res.HW.SyncEvents))
			lastTSync.Set(float64(res.TSync))
		}()
	}

	rc.TB.Engines = fc.Boards
	tb := BuildTestbench(rc.TB)
	hwFed, err := cosim.NewSimFederate("hw", tb.Sim, tb.Clk)
	if err != nil {
		closeBoth(tr)
		return res, err
	}

	parties := []federation.Party{{Fed: hwFed, Eager: true}}
	var links []federation.Link

	// Auxiliary pulse kernels: eager parties writing into board 0.
	var pulses []*pulseDevice
	for p := 0; p < fc.PulseDevices; p++ {
		pd := newPulseDevice(p, fc.PulsePeriod, rc.TB.ClockPeriod)
		pf, perr := cosim.NewSimFederate(fmt.Sprintf("pulse%d", p), pd.sim, pd.clk)
		if perr != nil {
			closeBoth(tr)
			return res, perr
		}
		pulses = append(pulses, pd)
		parties = append(parties, federation.Party{Fed: pf, Eager: true})
	}

	// Board parties, one per checksum engine. Wire boards each get their
	// own base transport pair, decorator stack and goroutine; in-process
	// boards run as federates on the manager's goroutine.
	var sides []*BoardSide
	var procFeds []*cosim.ProcFederate
	var boardFeds []*board.Federate
	var closers []func() error
	pulseSeen := make([]uint64, fc.PulseDevices)
	boardDone := make(chan error, fc.Boards)
	wired := 0
	closeAll := func() {
		for _, c := range closers {
			c()
		}
	}
	abort := func() {
		closeAll()
		closeBoth(tr)
		for j := 0; j < wired; j++ {
			<-boardDone
		}
	}
	for i := 0; i < fc.Boards; i++ {
		acfg := rc.AppCfg
		acfg.Engine = i
		bs, berr := BuildBoardSide(rc.BoardCfg, acfg)
		if berr != nil {
			abort()
			return res, berr
		}
		if i == 0 {
			// Register the pulse windows and their counting DSRs before
			// the board attaches to its link.
			for p := 0; p < fc.PulseDevices; p++ {
				pdev, derr := bs.Board.NewRemoteDev(fmt.Sprintf("/dev/pulse%d", p), PulseBase(p), PulseStride, nil)
				if derr != nil {
					abort()
					return res, derr
				}
				p := p
				bs.Board.K.AttachInterrupt(int(PulseIRQ(p)), nil, func() {
					if pdev.PeekShadow(0) != 0 {
						pulseSeen[p]++
					}
				})
			}
		}
		sides = append(sides, bs)
		partyIdx := len(parties)
		name := fmt.Sprintf("board%d", i)
		if fc.InProcBoards {
			bf := board.NewFederate(name, bs.Board)
			boardFeds = append(boardFeds, bf)
			parties = append(parties, federation.Party{Fed: bf})
		} else {
			hwBase, boardBase := tr.HW, tr.Board
			tr = Transports{} // consumed
			if hwBase == nil {
				var derr error
				switch rc.Transport {
				case TransportTCP:
					hwBase, boardBase, derr = dialSelf()
				case TransportUDS:
					hwBase, boardBase, derr = dialSelfUDS()
				case TransportShm:
					hwBase, boardBase, derr = cosim.NewShmPair(cosim.ShmConfig{})
				default:
					hwBase, boardBase = cosim.NewInProcPair(4096)
				}
				if derr != nil {
					abort()
					return res, derr
				}
			}
			if k, ok := baseTransportKind(hwBase); ok && i == 0 {
				res.TransportKind = k
			}
			stack := rc.stack().With(fc.LinkStack...)
			hwT, hwClose := cosim.BuildStack(hwBase, stack)
			boardT, boardClose := cosim.BuildStack(boardBase, stack.Peer())
			closers = append(closers, hwClose, boardClose)
			if rc.Trace != nil {
				hwT = cosim.NewTraceTransport(hwT, rc.Trace)
				boardT = cosim.NewTraceTransport(boardT, rc.Trace)
			}
			ep := cosim.NewHWEndpoint(hwT, rc.Mode)
			bep := cosim.NewBoardEndpoint(boardT)
			if rc.Obs != nil {
				ep.ObserveAs(rc.Obs, name)
				bep.ObserveAs(rc.Obs, name+":board")
			}
			bs.Dev.Attach(bep)
			pf := cosim.NewProcFederate(name, ep)
			procFeds = append(procFeds, pf)
			parties = append(parties, federation.Party{Fed: pf})
			go func(bs *BoardSide) { boardDone <- bs.Board.Run(bep) }(bs)
			wired++
		}
		links = append(links,
			federation.Link{From: 0, To: partyIdx, Base: EngineBase(i), Size: EngineStride, IRQs: []uint8{EngineIRQ(i)}},
			federation.Link{From: partyIdx, To: 0, Base: EngineBase(i), Size: EngineStride})
		if i == 0 {
			for p := 0; p < fc.PulseDevices; p++ {
				links = append(links, federation.Link{
					From: 1 + p, To: partyIdx,
					Base: PulseBase(p), Size: PulseStride,
					IRQs: []uint8{PulseIRQ(p)},
				})
			}
		}
	}

	mgr, err := federation.New(federation.Config{
		Parties:    parties,
		Links:      links,
		TSync:      rc.TSync,
		Horizon:    rc.budget(),
		Adaptive:   rc.Adaptive,
		MaxQuantum: rc.MaxQuantum,
		StopEarly:  tb.Finished,
	})
	if err != nil {
		abort()
		return res, err
	}

	// Context cancellation tears the wire stacks down, unblocking any
	// board waiting on its link; the cause is reported as the run error.
	if ctx == nil {
		ctx = context.Background()
	}
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			closeAll()
		case <-watchDone:
		}
	}()
	defer func() {
		if err != nil && ctx.Err() != nil {
			err = fmt.Errorf("router: run canceled: %w", context.Cause(ctx))
		}
	}()

	start := time.Now()
	fedStats, err := mgr.Run(ctx)
	res.Wall = time.Since(start)
	res.Fed = fedStats
	if err != nil {
		closeAll()
		for j := 0; j < wired; j++ {
			<-boardDone
		}
		return res, fmt.Errorf("router: federation: %w", err)
	}
	closeAll()
	for j := 0; j < wired; j++ {
		if berr := <-boardDone; berr != nil {
			return res, fmt.Errorf("router: board side: %w", berr)
		}
	}

	res.HW = hwFed.Stats()
	res.Router = tb.Router.Stats()
	res.Consumers = tb.ConsumerTotals()
	res.Generated = tb.Generated()
	res.SimCycles = res.HW.Cycles
	var overruns, mboxDrops uint64
	for i, bs := range sides {
		st := bs.App.Stats()
		res.Apps = append(res.Apps, st)
		overruns += st.Overruns
		mboxDrops += st.MboxDrops
		var cy, sw uint64
		if fc.InProcBoards {
			cy, sw = boardFeds[i].BoardTime()
		} else {
			cy, sw = procFeds[i].BoardTime()
		}
		res.BoardCycles = append(res.BoardCycles, cy)
		if i == 0 {
			res.RunResult.BoardCycles, res.BoardSWTicks = cy, sw
			res.App = st
			res.Board = bs.Board.Stats()
		}
	}
	if len(procFeds) > 0 {
		res.Link = *procFeds[0].Metrics()
	}
	for _, pd := range pulses {
		res.PulseSent = append(res.PulseSent, pd.count)
	}
	res.PulseSeen = pulseSeen
	if res.Generated > 0 {
		res.Accuracy = float64(res.Router.Forwarded) / float64(res.Generated)
	}
	res.Conservation = tb.CheckConservation(overruns, mboxDrops)
	return res, nil
}

// RunFederation is the federated entry point: Run with a WithFederation
// option, returning the extended FederationResult. Options are applied
// to DefaultRunConfig as in Run; fc supplies the topology.
func RunFederation(ctx context.Context, fc FederationConfig, opts ...Option) (FederationResult, error) {
	rc := DefaultRunConfig()
	for _, o := range opts {
		o(&rc)
	}
	rc.Federation = &fc
	return runFederation(ctx, rc, Transports{})
}
