package router

import (
	"context"
	"io"

	"repro/internal/board"
	"repro/internal/cosim"
	"repro/internal/obs"
)

// Transports bundles the two base transports of one co-simulation run.
// The zero value asks Run to establish a private link itself, according
// to the configured TransportKind (in-process channels or loopback TCP).
type Transports struct {
	HW    cosim.Transport
	Board cosim.Transport
}

// Option mutates the RunConfig a Run starts from (DefaultRunConfig).
// Options are applied in order, so later options win; WithConfig replaces
// the whole configuration and is typically first when present.
type Option func(*RunConfig)

// WithConfig replaces the entire configuration. Use it to run a fully
// assembled RunConfig through the Run entry point (the removed
// RunCoSim/RunOnTransports wrappers did exactly this).
func WithConfig(rc RunConfig) Option { return func(c *RunConfig) { *c = rc } }

// WithTSync sets the synchronization interval in clock cycles.
func WithTSync(n uint64) Option { return func(c *RunConfig) { c.TSync = n } }

// WithSyncMode selects the rendezvous scheduling mode.
func WithSyncMode(m cosim.SyncMode) Option { return func(c *RunConfig) { c.Mode = m } }

// WithTransport selects how a self-dialed link is established; it has no
// effect when caller-provided Transports are used.
func WithTransport(k TransportKind) Option { return func(c *RunConfig) { c.Transport = k } }

// WithAdaptiveSync enables lookahead-negotiated quantum elongation with
// the given cap on the elongated quantum in clock cycles (0 means
// 64×TSync). Results are bit-identical in simulated time; only the number
// of rendezvous changes. Incompatible with SyncPipelined (Validate
// rejects the combination).
func WithAdaptiveSync(maxQuantum uint64) Option {
	return func(c *RunConfig) {
		c.Adaptive = true
		c.MaxQuantum = maxQuantum
	}
}

// WithBatching enables wire-frame coalescing on both sides of the link:
// a quantum's DATA/INT messages ride in one MTBatch frame per channel
// flush (see cosim.BatchTransport).
func WithBatching() Option { return func(c *RunConfig) { c.Batch = true } }

// WithStack sets the transport decorator layers from a cosim.StackConfig,
// the same structure BuildStack consumes: Delay, Chaos, Session and
// Batch. The board side automatically uses the config's Peer().
func WithStack(sc cosim.StackConfig) Option {
	return func(c *RunConfig) {
		c.LinkDelay = sc.Delay
		c.Chaos = sc.Chaos
		c.Resilience = sc.Session
		c.Batch = sc.Batch
	}
}

// WithStackOptions applies cosim.StackOption layers on top of the
// config's current transport-stack fields (later options win, as in
// cosim.StackConfig.With). It composes with WithStack: the options fold
// over whatever the config holds at application time.
func WithStackOptions(opts ...cosim.StackOption) Option {
	return func(c *RunConfig) {
		sc := c.stack().With(opts...)
		c.LinkDelay, c.Chaos, c.Resilience, c.Batch = sc.Delay, sc.Chaos, sc.Session, sc.Batch
	}
}

// WithFederation routes the run through the hierarchical time manager
// (internal/cosim/federation) with the given N-party topology. All other
// options keep their meaning — TSync, Adaptive/MaxQuantum, Mode,
// Transport, the stack fields and Obs apply to every wire board link —
// except TB.Engines, which is forced to the board count. Run then
// returns the embedded RunResult of the federated run; use RunFederation
// for the full FederationResult.
func WithFederation(fc FederationConfig) Option {
	return func(c *RunConfig) { c.Federation = &fc }
}

// WithObs publishes live metrics for the run into reg.
func WithObs(reg *obs.Registry) Option { return func(c *RunConfig) { c.Obs = reg } }

// WithTrace logs every protocol message on both sides of the link to w
// (see cosim.TraceTransport).
func WithTrace(w io.Writer) Option { return func(c *RunConfig) { c.Trace = w } }

// WithMaxCycles bounds the run explicitly instead of deriving a budget
// from the workload.
func WithMaxCycles(n uint64) Option { return func(c *RunConfig) { c.MaxCycles = n } }

// WithTB sets the hardware testbench configuration.
func WithTB(tbc TBConfig) Option { return func(c *RunConfig) { c.TB = tbc } }

// WithBoardConfig sets the virtual board configuration.
func WithBoardConfig(bc board.Config) Option { return func(c *RunConfig) { c.BoardCfg = bc } }

// WithAppConfig sets the board application configuration.
func WithAppConfig(ac AppConfig) Option { return func(c *RunConfig) { c.AppCfg = ac } }

// Run is the co-simulation entry point: it executes the full paper
// testbench — the HDL side under DriverSimulate on the calling goroutine,
// the virtual board on a second goroutine — configured by applying opts
// to DefaultRunConfig.
//
// tr supplies the base transports. The zero value establishes a private
// link per the configured TransportKind; a populated pair (e.g. routed
// through a farm's shared listener) is owned by Run — both transports are
// closed by the time it returns.
//
// Cancelling ctx tears the link down, which unblocks both sides; Run then
// returns the context's cause as its error.
func Run(ctx context.Context, tr Transports, opts ...Option) (RunResult, error) {
	rc := DefaultRunConfig()
	for _, o := range opts {
		o(&rc)
	}
	res := RunResult{TSync: rc.TSync, TransportKind: rc.Transport, Mode: rc.Mode}
	if (tr.HW == nil) != (tr.Board == nil) {
		closeBoth(tr)
		return res, errHalfTransports
	}
	if rc.Federation != nil {
		fres, err := runFederation(ctx, rc, tr)
		return fres.RunResult, err
	}
	if tr.HW == nil {
		if err := rc.Validate(); err != nil {
			return res, err
		}
		switch rc.Transport {
		case TransportTCP:
			var err error
			tr.HW, tr.Board, err = dialSelf()
			if err != nil {
				return res, err
			}
		case TransportUDS:
			var err error
			tr.HW, tr.Board, err = dialSelfUDS()
			if err != nil {
				return res, err
			}
		case TransportShm:
			var err error
			tr.HW, tr.Board, err = cosim.NewShmPair(cosim.ShmConfig{})
			if err != nil {
				return res, err
			}
		default:
			tr.HW, tr.Board = cosim.NewInProcPair(4096)
		}
	}
	return runOnTransports(ctx, rc, tr.HW, tr.Board)
}

func closeBoth(tr Transports) {
	if tr.HW != nil {
		tr.HW.Close()
	}
	if tr.Board != nil {
		tr.Board.Close()
	}
}
