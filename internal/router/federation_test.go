package router

import (
	"context"
	"testing"

	"repro/internal/cosim"
)

// fedTransports lists the transport kinds the federation matrix covers
// on this platform.
func fedTransports() []TransportKind {
	kinds := []TransportKind{TransportInProc, TransportTCP, TransportUDS}
	if cosim.ShmSupported() {
		kinds = append(kinds, TransportShm)
	}
	return kinds
}

// TestFederationPairwiseBitIdentity is the K=2 acceptance gate of the
// time-manager redesign: a one-board federation must replicate the
// pairwise run exactly — same virtual-time fingerprint AND the same
// rendezvous schedule (SyncEvents + SyncsElided) — on every transport,
// with and without adaptive elongation.
func TestFederationPairwiseBitIdentity(t *testing.T) {
	for _, kind := range fedTransports() {
		for _, adaptive := range []bool{false, true} {
			name := kind.String()
			if adaptive {
				name += "/adaptive"
			}
			t.Run(name, func(t *testing.T) {
				rc := DefaultRunConfig()
				rc.TB = smallTB()
				rc.TSync = 200
				rc.Transport = kind
				rc.Adaptive = adaptive
				if adaptive {
					// Sparser traffic leaves quiet boundaries for the
					// negotiation to elide; the busy default never does.
					rc.TB.Period = 2000
				}

				pair, err := Run(context.Background(), Transports{}, WithConfig(rc))
				if err != nil {
					t.Fatalf("pairwise: %v", err)
				}
				fed, err := RunFederation(context.Background(), FederationConfig{Boards: 1}, WithConfig(rc))
				if err != nil {
					t.Fatalf("federation: %v", err)
				}

				if got, want := fingerprint(fed.RunResult), fingerprint(pair); got != want {
					t.Errorf("virtual-time fingerprint diverged:\npair %+v\nfed  %+v", want, got)
				}
				if fed.HW.SyncEvents != pair.HW.SyncEvents {
					t.Errorf("SyncEvents: pair %d, federation %d", pair.HW.SyncEvents, fed.HW.SyncEvents)
				}
				if fed.HW.SyncsElided != pair.HW.SyncsElided {
					t.Errorf("SyncsElided: pair %d, federation %d", pair.HW.SyncsElided, fed.HW.SyncsElided)
				}
				if adaptive && fed.HW.SyncsElided == 0 {
					t.Error("adaptive federation elided nothing — the negotiation is not reaching the manager")
				}
				if fed.TransportKind != kind {
					t.Errorf("reported transport %v, want %v", fed.TransportKind, kind)
				}
				if fed.Conservation != nil {
					t.Errorf("conservation: %v", fed.Conservation)
				}
			})
		}
	}
}

// TestFederationInProcBoardIdentity: hosting the board in-process as a
// board.Federate (no wire, no goroutine) must still match the pairwise
// run's virtual-time results — the grant application order is the wire
// contract, not a transport artifact.
func TestFederationInProcBoardIdentity(t *testing.T) {
	rc := DefaultRunConfig()
	rc.TB = smallTB()
	rc.TSync = 200

	pair, err := Run(context.Background(), Transports{}, WithConfig(rc))
	if err != nil {
		t.Fatalf("pairwise: %v", err)
	}
	fed, err := RunFederation(context.Background(), FederationConfig{Boards: 1, InProcBoards: true}, WithConfig(rc))
	if err != nil {
		t.Fatalf("federation: %v", err)
	}
	if got, want := fingerprint(fed.RunResult), fingerprint(pair); got != want {
		t.Errorf("virtual-time fingerprint diverged:\npair %+v\nfed  %+v", want, got)
	}
	if fed.TransportKind != TransportInProc {
		t.Errorf("in-process federation reported transport %v", fed.TransportKind)
	}
}

// TestFederationMultiBoardDeterminism covers the 1-device+K-board
// topology: the run must verify every packet, keep the conservation
// invariant, and produce the identical fingerprint on repeated runs (the
// -race build makes this an adversarial-interleaving check for the wire
// variant, which runs each board on its own goroutine).
func TestFederationMultiBoardDeterminism(t *testing.T) {
	for _, inproc := range []bool{false, true} {
		name := "wire"
		if inproc {
			name = "inprocBoards"
		}
		t.Run(name, func(t *testing.T) {
			run := func() FederationResult {
				rc := DefaultRunConfig()
				rc.TB = smallTB()
				rc.TSync = 200
				res, err := RunFederation(context.Background(),
					FederationConfig{Boards: 2, InProcBoards: inproc}, WithConfig(rc))
				if err != nil {
					t.Fatalf("federation: %v", err)
				}
				return res
			}
			a, b := run(), run()
			if a.Accuracy != 1.0 {
				t.Errorf("accuracy %.3f (router %+v)", a.Accuracy, a.Router)
			}
			if a.Conservation != nil {
				t.Errorf("conservation: %v", a.Conservation)
			}
			if len(a.Apps) != 2 || len(a.BoardCycles) != 2 {
				t.Fatalf("%d app stats, %d board clocks", len(a.Apps), len(a.BoardCycles))
			}
			if a.Apps[0].Verified == 0 || a.Apps[1].Verified == 0 {
				t.Errorf("load not split: verified %d/%d", a.Apps[0].Verified, a.Apps[1].Verified)
			}
			if fingerprint(a.RunResult) != fingerprint(b.RunResult) {
				t.Errorf("repeated runs diverged:\nfirst  %+v\nsecond %+v",
					fingerprint(a.RunResult), fingerprint(b.RunResult))
			}
			if a.Fed.Syncs != b.Fed.Syncs || a.Fed.Elided != b.Fed.Elided {
				t.Errorf("schedules diverged: %d/%d vs %d/%d syncs/elided",
					a.Fed.Syncs, a.Fed.Elided, b.Fed.Syncs, b.Fed.Elided)
			}
		})
	}
}

// TestFederationPulseDevices covers the K-device+1-board topology: two
// auxiliary HDL kernels beat into board 0's private windows alongside
// the router traffic. Every emitted heartbeat must arrive (the routed
// exchange loses nothing), deterministically.
func TestFederationPulseDevices(t *testing.T) {
	for _, adaptive := range []bool{false, true} {
		name := "plain"
		if adaptive {
			name = "adaptive"
		}
		t.Run(name, func(t *testing.T) {
			run := func() FederationResult {
				rc := DefaultRunConfig()
				rc.TB = smallTB()
				rc.TSync = 200
				rc.Adaptive = adaptive
				res, err := RunFederation(context.Background(),
					FederationConfig{Boards: 1, PulseDevices: 2}, WithConfig(rc))
				if err != nil {
					t.Fatalf("federation: %v", err)
				}
				return res
			}
			res := run()
			if res.Accuracy != 1.0 {
				t.Errorf("accuracy %.3f with pulse devices attached", res.Accuracy)
			}
			if len(res.PulseSent) != 2 || len(res.PulseSeen) != 2 {
				t.Fatalf("pulse counters: sent %v seen %v", res.PulseSent, res.PulseSeen)
			}
			for p := range res.PulseSent {
				if res.PulseSent[p] == 0 {
					t.Errorf("pulse %d never beat", p)
				}
				if res.PulseSent[p] != res.PulseSeen[p] {
					t.Errorf("pulse %d: %d heartbeats sent, %d observed by the board DSR",
						p, res.PulseSent[p], res.PulseSeen[p])
				}
			}
			again := run()
			if fingerprint(res.RunResult) != fingerprint(again.RunResult) {
				t.Errorf("repeated runs diverged")
			}
			if res.PulseSeen[0] != again.PulseSeen[0] || res.PulseSeen[1] != again.PulseSeen[1] {
				t.Errorf("pulse delivery diverged: %v vs %v", res.PulseSeen, again.PulseSeen)
			}
		})
	}
}

// TestFederationConfigValidate: incoherent topologies fail fast with
// actionable errors, like RunConfig.Validate.
func TestFederationConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		fc   FederationConfig
	}{
		{"no boards", FederationConfig{Boards: 0}},
		{"negative pulses", FederationConfig{Boards: 1, PulseDevices: -1}},
		{"inproc with link stack", FederationConfig{Boards: 1, InProcBoards: true,
			LinkStack: []cosim.StackOption{cosim.WithBatching()}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.fc.Validate(); err == nil {
				t.Fatal("invalid federation config accepted")
			}
			if _, err := RunFederation(context.Background(), tc.fc); err == nil {
				t.Fatal("RunFederation accepted an invalid config")
			}
		})
	}
}

// TestRunDispatchesFederation: the plain Run entry point honors
// WithFederation, returning the embedded pairwise-compatible result.
func TestRunDispatchesFederation(t *testing.T) {
	rc := DefaultRunConfig()
	rc.TB = smallTB()
	rc.TSync = 200

	direct, err := Run(context.Background(), Transports{}, WithConfig(rc))
	if err != nil {
		t.Fatalf("pairwise: %v", err)
	}
	viaOption, err := Run(context.Background(), Transports{}, WithConfig(rc),
		WithFederation(FederationConfig{Boards: 1}))
	if err != nil {
		t.Fatalf("federated Run: %v", err)
	}
	if fingerprint(direct) != fingerprint(viaOption) {
		t.Errorf("WithFederation result diverged from pairwise:\npair %+v\nfed  %+v",
			fingerprint(direct), fingerprint(viaOption))
	}
}
