package router

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/cosim"
)

func TestRunConfigValidate(t *testing.T) {
	ok := DefaultRunConfig()
	if err := ok.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*RunConfig)
		want   string // substring the actionable error must contain
	}{
		{"zero tsync", func(rc *RunConfig) { rc.TSync = 0 }, "TSync"},
		{"negative link delay", func(rc *RunConfig) { rc.LinkDelay = -1 }, "LinkDelay"},
		{"chaos without resilience", func(rc *RunConfig) {
			sc := cosim.UniformScenario(1, cosim.FaultProfile{Drop: 0.1})
			rc.Chaos = &sc
			rc.Resilience = nil
		}, "Chaos without Resilience"},
		{"unknown transport", func(rc *RunConfig) { rc.Transport = TransportKind(99) }, "TransportKind"},
		{"adaptive with pipelined acks", func(rc *RunConfig) {
			rc.Adaptive = true
			rc.Mode = cosim.SyncPipelined
		}, "Adaptive with SyncPipelined"},
		// A TSync huge enough to wrap the derived budget (WorkCycles +
		// 8×TSync + slack) used to be accepted and silently truncated the
		// run; it must be an explicit, actionable error.
		{"tsync overflows budget", func(rc *RunConfig) { rc.TSync = math.MaxUint64 / 4 }, "overflows the derived cycle budget"},
		{"tsync overflows budget exactly", func(rc *RunConfig) {
			work := rc.TB.WorkCycles()
			rc.TSync = (math.MaxUint64-20000-work)/8 + 1
		}, "overflows the derived cycle budget"},
		{"grant tick product overflows", func(rc *RunConfig) {
			rc.BoardCfg.CyclesPerGrantTick = math.MaxUint64 / 2
		}, "CyclesPerGrantTick"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rc := DefaultRunConfig()
			tc.mutate(&rc)
			err := rc.Validate()
			if err == nil {
				t.Fatal("invalid config accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the problem (%q)", err, tc.want)
			}
			// Run must reject it up front, before any run starts.
			if _, err := Run(context.Background(), Transports{}, WithConfig(rc)); err == nil {
				t.Fatal("Run accepted an invalid config")
			}
		})
	}

	// Chaos paired with resilience is coherent.
	rc := DefaultRunConfig()
	sc := cosim.UniformScenario(1, cosim.FaultProfile{Drop: 0.1})
	sess := cosim.DefaultSessionConfig()
	rc.Chaos = &sc
	rc.Resilience = &sess
	if err := rc.Validate(); err != nil {
		t.Fatalf("chaos+resilience rejected: %v", err)
	}
}

// TestRunClosesTransportsOnInvalidConfig proves the session-reusable
// entry point releases caller-established transports even when it
// rejects the config.
func TestRunClosesTransportsOnInvalidConfig(t *testing.T) {
	hwT, boardT := cosim.NewInProcPair(4)
	rc := DefaultRunConfig()
	rc.TSync = 0
	if _, err := Run(context.Background(), Transports{HW: hwT, Board: boardT}, WithConfig(rc)); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := hwT.Recv(cosim.ChanInt); err != cosim.ErrClosed {
		t.Fatalf("hw transport not closed after rejection: %v", err)
	}
	if _, err := boardT.Recv(cosim.ChanInt); err != cosim.ErrClosed {
		t.Fatalf("board transport not closed after rejection: %v", err)
	}
}
