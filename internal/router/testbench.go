package router

import (
	"fmt"

	"repro/internal/board"
	"repro/internal/hdlsim"
	"repro/internal/packet"
	"repro/internal/sim"
)

// TBConfig parameterizes the full paper testbench.
type TBConfig struct {
	// Ports / FIFOCap configure the router (paper: 4 ports).
	Ports   int
	FIFOCap int
	// Engines is the number of checksum-offload engines/boards (default 1).
	Engines int
	// PacketsPerPort is each producer's quota; the experiment's N is
	// Ports × PacketsPerPort.
	PacketsPerPort int
	// Period is the per-producer packet period in clock cycles.
	Period uint64
	// DataWords is the payload size per packet.
	DataWords int
	// ErrRate is the fraction of deliberately corrupted packets.
	ErrRate float64
	// MulticastRate is the fraction of packets emitted as multicast (a
	// random non-empty port mask), exercising the Helix switch's multicast
	// path.
	MulticastRate float64
	// Seed makes the traffic deterministic.
	Seed int64
	// ClockPeriod is the HDL clock period.
	ClockPeriod sim.Time
}

// DefaultTBConfig matches the experiments: 4 ports, 4-packet FIFOs, one
// packet per port every 1250 cycles, 8 payload words, a 100 MHz clock.
// With these parameters the sustained FIFO occupancy 1.5·T_sync/Period
// crosses the capacity at T_sync ≈ 4·1250/1.5 ≈ 4200–5000 cycles, placing
// the accuracy knee where the paper's Figure 7 has it.
func DefaultTBConfig() TBConfig {
	return TBConfig{
		Ports:          4,
		FIFOCap:        4,
		PacketsPerPort: 25,
		Period:         1250,
		DataWords:      8,
		ErrRate:        0,
		Seed:           1,
		ClockPeriod:    sim.NS(10),
	}
}

// N returns the total packet count of the workload.
func (c TBConfig) N() int { return c.Ports * c.PacketsPerPort }

// WorkCycles returns the cycles needed to inject the whole workload.
func (c TBConfig) WorkCycles() uint64 {
	return uint64(c.PacketsPerPort)*c.Period + c.Period
}

// Testbench is the instantiated hardware side: simulator, clock, router,
// producers and consumers.
type Testbench struct {
	Sim       *hdlsim.Simulator
	Clk       *hdlsim.Clock
	Router    *Router
	Producers []*Producer
	Consumers []*Consumer
	cfg       TBConfig
}

// BuildTestbench constructs the HDL side of the paper's evaluation setup.
func BuildTestbench(cfg TBConfig) *Testbench {
	s := hdlsim.NewSimulator("router-tb")
	clk := s.NewClock("clk", cfg.ClockPeriod)
	r := New(s, clk, Config{Ports: cfg.Ports, FIFOCap: cfg.FIFOCap, Engines: cfg.Engines})
	tb := &Testbench{Sim: s, Clk: clk, Router: r, cfg: cfg}
	for i := 0; i < cfg.Ports; i++ {
		gen := packet.NewGenerator(cfg.Seed+int64(i), uint16(i), cfg.Ports, cfg.DataWords, cfg.ErrRate)
		gen.SetMulticastRate(cfg.MulticastRate)
		phase := uint64(i) * cfg.Period / uint64(cfg.Ports)
		tb.Producers = append(tb.Producers,
			NewProducer(s, clk, r.In[i], gen, cfg.PacketsPerPort, cfg.Period, phase))
		tb.Consumers = append(tb.Consumers,
			NewConsumer(s, r.Out[i], i, r.RouteOf))
	}
	// Device-side lookahead oracle for adaptive synchronization: the
	// router interrupts the board only when posting a buffered packet, and
	// new packets arrive on the producers' closed-form schedule, so the
	// next possible interrupt is bounded by the earliest upcoming emission
	// (minus a small posting-pipeline slack). Purely advisory — grant
	// elongation stays bit-exact even if this bound were wrong (see
	// hdlsim.DriverSimulate) — but it keeps grants short when an interrupt
	// is imminent.
	const postSlack = 4
	s.SetInterruptLookahead(func() uint64 {
		if r.IRQPending() {
			return 0
		}
		next := hdlsim.UnboundedLookahead
		for _, p := range tb.Producers {
			if n := p.NextEmission(); n < next {
				next = n
			}
		}
		if next == hdlsim.UnboundedLookahead {
			return next
		}
		if now := clk.Cycles(); next > now+postSlack {
			return next - now - postSlack
		}
		return 0
	})
	return tb
}

// Cfg returns the testbench configuration.
func (tb *Testbench) Cfg() TBConfig { return tb.cfg }

// Generated returns the total packets emitted so far.
func (tb *Testbench) Generated() uint64 {
	var n uint64
	for _, p := range tb.Producers {
		n += p.Generated()
	}
	return n
}

// ProducersDone reports whether the full workload has been injected.
func (tb *Testbench) ProducersDone() bool {
	for _, p := range tb.Producers {
		if !p.Done() {
			return false
		}
	}
	return true
}

// Finished reports whether the workload is injected and fully drained.
func (tb *Testbench) Finished() bool {
	return tb.ProducersDone() && tb.Router.Quiescent()
}

// ConsumerTotals sums all consumers' counters.
func (tb *Testbench) ConsumerTotals() ConsumerStats {
	var t ConsumerStats
	for _, c := range tb.Consumers {
		s := c.Stats()
		t.Received += s.Received
		t.IntegrityError += s.IntegrityError
		t.Misrouted += s.Misrouted
	}
	return t
}

// CheckConservation verifies the packet-accounting invariant and returns
// an error describing any leak.
func (tb *Testbench) CheckConservation(boardOverruns, mboxDrops uint64) error {
	rs := tb.Router.Stats()
	gen := tb.Generated()
	accounted := rs.Forwarded + rs.DroppedFull + rs.DroppedChecksum +
		uint64(tb.Router.InFlight()) + uint64(tb.Router.outstandingCount())
	// Packets whose verdicts were lost to board-side overruns stay in
	// outstanding; they are counted there, so the identity must be exact.
	if gen != rs.Received {
		return fmt.Errorf("router: %d generated but %d received at inputs", gen, rs.Received)
	}
	// A packet both buffered and outstanding would be double-counted;
	// in-flight FIFO entries that are posted are exactly the outstanding
	// ones, so subtract the overlap.
	posted := uint64(0)
	for _, f := range tb.Router.fifos {
		for _, e := range f {
			if e.posted {
				posted++
			}
		}
	}
	accounted -= posted
	if gen != accounted {
		return fmt.Errorf("router: conservation violated: generated %d, accounted %d (stats %+v, overruns %d, mboxDrops %d)",
			gen, accounted, rs, boardOverruns, mboxDrops)
	}
	return nil
}

// BoardSide bundles the board-side pieces of the testbench.
type BoardSide struct {
	Board *board.Board
	Dev   *board.RemoteDev
	App   *BoardApp
}

// BuildBoardSide constructs the virtual board with the remote router
// device window (for the engine named by acfg.Engine) and the checksum
// application installed.
func BuildBoardSide(bcfg board.Config, acfg AppConfig) (*BoardSide, error) {
	b := board.New(bcfg)
	dev, err := b.NewRemoteDev(fmt.Sprintf("/dev/router%d", acfg.Engine),
		EngineBase(acfg.Engine), WindowSize, nil)
	if err != nil {
		return nil, err
	}
	app, err := InstallBoardApp(b, dev, acfg)
	if err != nil {
		return nil, err
	}
	return &BoardSide{Board: b, Dev: dev, App: app}, nil
}
