package router

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/cosim"
)

// runOutcome is the virtual-time fingerprint compared across entry
// points: if two runs agree on these, they are the same simulation.
type runOutcome struct {
	r      Stats
	cycles uint64
	ticks  uint64
	sim    uint64
}

func fingerprint(res RunResult) runOutcome {
	return runOutcome{r: res.Router, cycles: res.BoardCycles, ticks: res.BoardSWTicks, sim: res.SimCycles}
}

// TestRunEntryPointEquivalence is the tombstone of the removed
// RunCoSim(rc) and RunOnTransports(rc, hw, board) wrappers: every
// spelling of a run — WithConfig over a zero Transports value (the old
// RunCoSim), an equivalent option list, and caller-established
// transports (the old RunOnTransports) — produces bit-identical
// virtual-time results for the same configuration.
func TestRunEntryPointEquivalence(t *testing.T) {
	rc := DefaultRunConfig()
	rc.TB.PacketsPerPort = 4
	rc.TSync = 200

	viaRun, err := Run(context.Background(), Transports{}, WithConfig(rc))
	if err != nil {
		t.Fatalf("Run(WithConfig): %v", err)
	}

	viaOptions, err := Run(context.Background(), Transports{},
		WithTB(rc.TB), WithTSync(rc.TSync), WithSyncMode(rc.Mode),
		WithTransport(rc.Transport), WithBoardConfig(rc.BoardCfg), WithAppConfig(rc.AppCfg))
	if err != nil {
		t.Fatalf("Run(options): %v", err)
	}

	hwT, boardT := cosim.NewInProcPair(4096)
	viaTransports, err := Run(context.Background(), Transports{HW: hwT, Board: boardT}, WithConfig(rc))
	if err != nil {
		t.Fatalf("Run(Transports): %v", err)
	}

	want := fingerprint(viaRun)
	for name, got := range map[string]RunResult{
		"Run(options)":    viaOptions,
		"Run(Transports)": viaTransports,
	} {
		if fingerprint(got) != want {
			t.Errorf("%s diverged from Run(WithConfig):\nwant %+v\ngot  %+v", name, want, fingerprint(got))
		}
	}
}

// TestRunRejectsHalfTransports: a Transports value with exactly one side
// set is a caller bug; Run must fail fast and still release the side it
// was given.
func TestRunRejectsHalfTransports(t *testing.T) {
	hwT, boardT := cosim.NewInProcPair(4)
	defer boardT.Close()
	if _, err := Run(context.Background(), Transports{HW: hwT}); !errors.Is(err, errHalfTransports) {
		t.Fatalf("want errHalfTransports, got %v", err)
	}
	if _, err := hwT.Recv(cosim.ChanInt); err != cosim.ErrClosed {
		t.Fatalf("provided transport not closed after rejection: %v", err)
	}
}

// TestRunContextCancellation: cancelling the context mid-run tears the
// link down, unblocks both sides, and reports the context's cause.
func TestRunContextCancellation(t *testing.T) {
	rc := DefaultRunConfig()
	rc.TB.PacketsPerPort = 10000 // far more work than the test allows to finish
	rc.TSync = 50
	rc.MaxCycles = 1 << 40

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()

	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, Transports{}, WithConfig(rc))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled run reported success")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error does not carry the context cause: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled run never returned")
	}
}

// TestRunOptionOrdering: options apply in order over DefaultRunConfig, so
// a later specific option refines an earlier WithConfig.
func TestRunOptionOrdering(t *testing.T) {
	rc := DefaultRunConfig()
	rc.TSync = 77

	got := DefaultRunConfig()
	for _, o := range []Option{WithConfig(rc), WithTSync(99), WithAdaptiveSync(4000), WithBatching()} {
		o(&got)
	}
	if got.TSync != 99 {
		t.Fatalf("later WithTSync did not win: %d", got.TSync)
	}
	if !got.Adaptive || got.MaxQuantum != 4000 {
		t.Fatalf("WithAdaptiveSync not applied: adaptive=%v maxQ=%d", got.Adaptive, got.MaxQuantum)
	}
	if !got.Batch {
		t.Fatal("WithBatching not applied")
	}
}
