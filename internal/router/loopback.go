package router

import (
	"fmt"

	"repro/internal/checksum"
	"repro/internal/hdlsim"
	"repro/internal/packet"
)

// LoopbackEndpoint is a hdlsim.DriverEndpoint that verifies packets
// locally and instantly, with no board, no OS and no socket. It serves two
// purposes:
//
//   - it is the "simulation without synchronization" normalizer of the
//     paper's Figure 6 (T_sync = ∞): the same HDL workload at pure
//     simulator speed;
//   - it lets the router model be unit-tested in isolation.
//
// Verdicts are delivered after ResponseDelay further PollData calls
// (default 1), emulating an idealized zero-latency checker.
type LoopbackEndpoint struct {
	// ResponseDelay delays each verdict by that many cycles (PollData
	// calls). 0 means the verdict is visible the very next cycle.
	ResponseDelay uint64

	slots     map[uint32][]uint32 // slot addr → last block written
	pipeline  []delayedVerdict
	boardCy   uint64
	ints      uint64
	finishCnt int
}

type delayedVerdict struct {
	due  uint64
	seq  uint32
	ok   bool
	tick uint64
}

// NewLoopbackEndpoint creates the endpoint.
func NewLoopbackEndpoint() *LoopbackEndpoint {
	return &LoopbackEndpoint{slots: make(map[uint32][]uint32)}
}

var _ hdlsim.DriverEndpoint = (*LoopbackEndpoint)(nil)

// PollData implements hdlsim.DriverEndpoint: it releases due verdicts.
func (l *LoopbackEndpoint) PollData() []hdlsim.DataMsg {
	l.boardCy++
	var out []hdlsim.DataMsg
	rest := l.pipeline[:0]
	for _, v := range l.pipeline {
		if v.due <= l.boardCy {
			ok := uint32(0)
			if v.ok {
				ok = 1
			}
			out = append(out, hdlsim.DataMsg{
				Kind:  hdlsim.DataWrite,
				Addr:  RegVerdictBase,
				Words: []uint32{v.seq, ok},
			})
		} else {
			rest = append(rest, v)
		}
	}
	l.pipeline = rest
	return out
}

// SendData implements hdlsim.DriverEndpoint: slot writes are remembered;
// a sequence-register write triggers verification of the slot it names.
func (l *LoopbackEndpoint) SendData(m hdlsim.DataMsg) error {
	if m.Kind != hdlsim.DataWrite {
		return nil
	}
	if m.Addr == RegRxSeq && len(m.Words) == 1 {
		seq := m.Words[0]
		slot, ok := l.slots[SlotAddr(seq)]
		if !ok || len(slot) < 1 {
			return fmt.Errorf("router: loopback: seq %d names an unwritten slot", seq)
		}
		n := slot[0]
		if int(n) > len(slot)-1 {
			return fmt.Errorf("router: loopback: slot header claims %d words", n)
		}
		p, _, err := packet.Decode(slot[1 : 1+n])
		valid := err == nil && checksum.InternetWords(checksumInputWords(p)) == p.Checksum
		l.pipeline = append(l.pipeline, delayedVerdict{
			due: l.boardCy + 1 + l.ResponseDelay, seq: seq, ok: valid,
		})
		return nil
	}
	cp := make([]uint32, len(m.Words))
	copy(cp, m.Words)
	l.slots[m.Addr] = cp
	return nil
}

// SendInterrupt implements hdlsim.DriverEndpoint (counted, ignored).
func (l *LoopbackEndpoint) SendInterrupt(irq uint8) error {
	l.ints++
	return nil
}

// Sync implements hdlsim.DriverEndpoint: the phantom board is always
// exactly in step.
func (l *LoopbackEndpoint) Sync(ticks, hwCycle uint64) (uint64, error) {
	return hwCycle, nil
}

// Finish implements hdlsim.DriverEndpoint.
func (l *LoopbackEndpoint) Finish(hwCycle uint64) error {
	l.finishCnt++
	return nil
}

// Interrupts returns how many INT packets the router raised.
func (l *LoopbackEndpoint) Interrupts() uint64 { return l.ints }
