package router

import (
	"context"
	"math/bits"
	"testing"

	"repro/internal/packet"
)

func TestMulticastLoopback(t *testing.T) {
	cfg := smallTB()
	cfg.MulticastRate = 0.5
	cfg.Seed = 31
	res, err := RunLoopback(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Conservation != nil {
		t.Fatal(res.Conservation)
	}
	rs := res.Router
	if rs.Forwarded != res.Generated {
		t.Fatalf("forwarded %d of %d", rs.Forwarded, res.Generated)
	}
	// Multicast fanout: copies exceed unique packets.
	if rs.Delivered <= rs.Forwarded {
		t.Fatalf("delivered %d copies of %d packets — no multicast fanout observed",
			rs.Delivered, rs.Forwarded)
	}
	if res.Consumers.Received != rs.Delivered {
		t.Fatalf("consumers saw %d, router delivered %d", res.Consumers.Received, rs.Delivered)
	}
	if res.Consumers.Misrouted != 0 || res.Consumers.IntegrityError != 0 {
		t.Fatalf("consumer errors: %+v", res.Consumers)
	}
}

func TestMulticastCopyCountMatchesMasks(t *testing.T) {
	// Regenerate the same traffic stream and compute the expected copy
	// count from the port masks directly.
	cfg := smallTB()
	cfg.MulticastRate = 0.7
	cfg.Seed = 77
	var expect uint64
	for i := 0; i < cfg.Ports; i++ {
		gen := packet.NewGenerator(cfg.Seed+int64(i), uint16(i), cfg.Ports, cfg.DataWords, cfg.ErrRate)
		gen.SetMulticastRate(cfg.MulticastRate)
		for n := 0; n < cfg.PacketsPerPort; n++ {
			p := gen.Next()
			if p.IsMulticast() {
				expect += uint64(bits.OnesCount16(p.PortMask()))
			} else {
				expect++
			}
		}
	}
	res, err := RunLoopback(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Router.Delivered != expect {
		t.Fatalf("delivered %d copies, masks predict %d", res.Router.Delivered, expect)
	}
}

func TestMulticastThroughFullCoSim(t *testing.T) {
	rc := DefaultRunConfig()
	rc.TB = smallTB()
	rc.TB.MulticastRate = 0.4
	rc.TB.Seed = 5
	rc.TSync = 250
	res, err := Run(context.Background(), Transports{}, WithConfig(rc))
	if err != nil {
		t.Fatal(err)
	}
	if res.Conservation != nil {
		t.Fatal(res.Conservation)
	}
	if res.Accuracy != 1.0 {
		t.Fatalf("accuracy %.3f with tight coupling (router %+v)", res.Accuracy, res.Router)
	}
	if res.Router.Delivered <= res.Router.Forwarded {
		t.Fatal("no multicast copies through the co-simulated path")
	}
	if res.Consumers.Misrouted != 0 {
		t.Fatalf("misroutes: %+v", res.Consumers)
	}
}

func TestMulticastPacketHelpers(t *testing.T) {
	u := packet.Packet{Dst: 3}
	if u.IsMulticast() {
		t.Fatal("unicast flagged multicast")
	}
	m := packet.Packet{Dst: packet.MulticastBit | 0b1010}
	if !m.IsMulticast() || m.PortMask() != 0b1010 {
		t.Fatalf("multicast helpers: %v %#x", m.IsMulticast(), m.PortMask())
	}
	// The checksum covers the full Dst including the multicast bit.
	sealed := m.Seal()
	corrupt := sealed
	corrupt.Dst &^= packet.MulticastBit
	if corrupt.Valid() {
		t.Fatal("clearing the multicast bit went undetected")
	}
}
