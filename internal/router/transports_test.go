package router

import (
	"context"
	"testing"

	"repro/internal/cosim"
)

func TestCoSimEndToEndUDS(t *testing.T) {
	rc := DefaultRunConfig()
	rc.TB = smallTB()
	rc.TSync = 500
	rc.Transport = TransportUDS
	res, err := Run(context.Background(), Transports{}, WithConfig(rc))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy != 1.0 {
		t.Fatalf("UDS accuracy %.3f (router %+v)", res.Accuracy, res.Router)
	}
	if res.TransportKind != TransportUDS {
		t.Fatalf("TransportKind = %v, want uds", res.TransportKind)
	}
}

func TestCoSimEndToEndShm(t *testing.T) {
	if !cosim.ShmSupported() {
		t.Skip("shm transport unsupported on this platform")
	}
	rc := DefaultRunConfig()
	rc.TB = smallTB()
	rc.TSync = 500
	rc.Transport = TransportShm
	res, err := Run(context.Background(), Transports{}, WithConfig(rc))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy != 1.0 {
		t.Fatalf("shm accuracy %.3f (router %+v)", res.Accuracy, res.Router)
	}
	if res.TransportKind != TransportShm {
		t.Fatalf("TransportKind = %v, want shm", res.TransportKind)
	}
}

// TestReportedKindReflectsActualTransport: a run over caller-provided
// transports must report the link actually used, not whatever default
// was left in the config.
func TestReportedKindReflectsActualTransport(t *testing.T) {
	hw, board := cosim.NewInProcPair(4096)
	rc := DefaultRunConfig()
	rc.TB = smallTB()
	rc.TSync = 500
	rc.Transport = TransportTCP // stale config value; the link is inproc
	res, err := Run(context.Background(), Transports{HW: hw, Board: board}, WithConfig(rc))
	if err != nil {
		t.Fatal(err)
	}
	if res.TransportKind != TransportInProc {
		t.Fatalf("TransportKind = %v, want inproc (the transport actually used)", res.TransportKind)
	}
}

// TestMultiRunReportsInProc is the regression test for the multirun
// mislabeling bug: RunCoSimMulti only ever wires in-process pairs, yet it
// used to echo rc.Transport into the result.
func TestMultiRunReportsInProc(t *testing.T) {
	rc := DefaultRunConfig()
	rc.TB = smallTB()
	rc.TSync = 200
	rc.Transport = TransportTCP // must not leak into the result
	res, err := RunCoSimMulti(rc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.TransportKind != TransportInProc {
		t.Fatalf("multi-run TransportKind = %v, want inproc", res.TransportKind)
	}
}

func TestTransportKindStrings(t *testing.T) {
	want := map[TransportKind]string{
		TransportInProc: "inproc",
		TransportTCP:    "tcp",
		TransportUDS:    "uds",
		TransportShm:    "shm",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

// TestValidateAcceptsNewKinds pins Validate's transport switch.
func TestValidateAcceptsNewKinds(t *testing.T) {
	for _, k := range []TransportKind{TransportInProc, TransportTCP, TransportUDS} {
		rc := DefaultRunConfig()
		rc.Transport = k
		if err := rc.Validate(); err != nil {
			t.Fatalf("Validate(%v) = %v", k, err)
		}
	}
	rc := DefaultRunConfig()
	rc.Transport = TransportShm
	err := rc.Validate()
	if cosim.ShmSupported() && err != nil {
		t.Fatalf("Validate(shm) = %v on a supported platform", err)
	}
	if !cosim.ShmSupported() && err == nil {
		t.Fatal("Validate(shm) accepted on an unsupported platform")
	}
	rc.Transport = TransportKind(99)
	if err := rc.Validate(); err == nil {
		t.Fatal("Validate accepted an unknown TransportKind")
	}
}
