package servo

import (
	"math"
	"testing"
)

func runAt(t *testing.T, tsync uint64) Quality {
	t.Helper()
	rc := DefaultRunConfig()
	rc.TSync = tsync
	q, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestTightLoopSettles(t *testing.T) {
	q := runAt(t, 250)
	if !q.Settled {
		t.Fatalf("tight loop did not settle: %v", q)
	}
	if q.Overshoot > 0.10 {
		t.Fatalf("tight-loop overshoot %.1f%%, want < 10%%", 100*q.Overshoot)
	}
	if q.FinalError > 50 {
		t.Fatalf("final error %.0f", q.FinalError)
	}
	if q.Updates == 0 {
		t.Fatal("controller never ran")
	}
}

func TestQualityPlateauBelowSamplePeriod(t *testing.T) {
	// While T_sync stays below the sensor sample period, the loop cannot
	// tell the coupling tightness apart: quality is bit-identical.
	ref := runAt(t, 100)
	for _, ts := range []uint64{250, 500} {
		q := runAt(t, ts)
		if q.IAE != ref.IAE || q.Overshoot != ref.Overshoot {
			t.Fatalf("quality differs below the sample period: Tsync=%d %v vs ref %v", ts, q, ref)
		}
	}
}

func TestQualityDegradesWithDelay(t *testing.T) {
	tight := runAt(t, 250)
	mid := runAt(t, 2000)
	if mid.Overshoot <= tight.Overshoot {
		t.Fatalf("overshoot did not grow with delay: %v vs %v", mid, tight)
	}
	if !mid.Settled {
		t.Fatalf("loop at Tsync=2000 should still settle: %v", mid)
	}
}

func TestLoopUnstableAtLargeDelay(t *testing.T) {
	q := runAt(t, 6000)
	if q.Settled {
		t.Fatalf("loop settled despite a delay past the stability margin: %v", q)
	}
	if q.IAE < 1000 {
		t.Fatalf("IAE %.0f suspiciously small for an unstable loop", q.IAE)
	}
}

func TestDeterminism(t *testing.T) {
	a := runAt(t, 1000)
	b := runAt(t, 1000)
	if a.IAE != b.IAE || a.Overshoot != b.Overshoot || a.FinalError != b.FinalError {
		t.Fatalf("runs differ:\n%v\n%v", a, b)
	}
}

func TestActuatorSaturation(t *testing.T) {
	rc := DefaultRunConfig()
	rc.Control.Kp = 100 // enormous gain: command must clamp, not explode
	rc.TSync = 250
	rc.TotalCycles = 20000
	q, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	// With saturation the position stays finite and bounded by what
	// MaxDrive can produce over the run.
	if math.IsNaN(q.IAE) || math.IsInf(q.IAE, 0) {
		t.Fatalf("diverged numerically: %v", q)
	}
}

func TestQualityString(t *testing.T) {
	q := Quality{IAE: 12, Overshoot: 0.05, FinalError: 3, Settled: true}
	if q.String() == "" {
		t.Fatal("empty string")
	}
}
