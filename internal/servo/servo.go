// Package servo is the second co-simulation scenario: closed-loop motion
// control, the factory-automation workload the paper's introduction is
// about (the industrial partner built servo drives). The hardware
// simulator models a DC-motor axis with a position sensor that samples at
// a fixed rate; the board runs a PI position controller as application
// software behind the remote device driver. The synchronization interval
// inserts real delay into the control loop, so control quality (tracking
// error, overshoot) degrades as T_sync grows — the control-engineering
// face of the paper's Figure 7 trade-off, and exactly the "verify the
// expected performance on the models" use case of section 1.
package servo

import (
	"fmt"
	"time"

	"repro/internal/board"
	"repro/internal/cosim"
	"repro/internal/hdlsim"
	"repro/internal/rtos"
	"repro/internal/sim"
)

// Device register map (word offsets; the window starts at 0).
const (
	RegPosition = 0x00 // sensor sample, milli-units, two's complement
	RegSample   = 0x01 // sample sequence number
	RegCommand  = 0x10 // board→plant: drive command, milli-units
	WindowWords = 0x11
	IRQSample   = 3
)

// PlantConfig parameterizes the simulated axis.
type PlantConfig struct {
	// StepCycles is the integration step of the plant model in clock
	// cycles.
	StepCycles uint64
	// SampleCycles is the sensor sampling period in clock cycles.
	SampleCycles uint64
	// Inertia and Friction set the axis dynamics (per integration step).
	Inertia  float64
	Friction float64
	// MaxDrive clamps the command magnitude (actuator saturation).
	MaxDrive float64
}

// DefaultPlantConfig returns an axis whose velocity loop is first-order
// (strong viscous friction, as in a geared servo axis), so a PI position
// loop is stable at small control delay and loses its margin as the
// delay approaches the plant's time constant.
func DefaultPlantConfig() PlantConfig {
	return PlantConfig{
		StepCycles:   50,
		SampleCycles: 500,
		Inertia:      10,
		Friction:     2.0,
		MaxDrive:     4000,
	}
}

// Plant is the HDL-side axis model: a discrete-time DC motor with a
// sampling position sensor publishing through driver ports.
type Plant struct {
	hdlsim.BaseModule
	cfg PlantConfig

	pos, vel float64
	drive    float64

	din  *hdlsim.DriverIn
	dout *hdlsim.DriverOut
	sim  *hdlsim.Simulator

	samples uint32
}

// NewPlant instantiates the axis on the simulator.
func NewPlant(s *hdlsim.Simulator, clk *hdlsim.Clock, cfg PlantConfig) *Plant {
	p := &Plant{BaseModule: hdlsim.BaseModule{Name: "axis"}, cfg: cfg, sim: s}
	p.din = s.NewDriverIn("axis.cmd", RegCommand, 1)
	p.dout = s.NewDriverOut("axis.sense", RegPosition, 2)
	s.DriverProcess("axis.driver", p.onCommand, p.din)
	s.Thread("axis.dynamics", p.dynamics)
	s.Thread("axis.sensor", func(c *hdlsim.Ctx) {
		for {
			c.WaitCycles(clk, cfg.SampleCycles)
			p.publishSample()
		}
	})
	_ = clk
	return p
}

// Position returns the current (continuous) axis position.
func (p *Plant) Position() float64 { return p.pos }

func (p *Plant) onCommand() {
	for {
		w, ok := p.din.Pop()
		if !ok {
			return
		}
		u := float64(int32(w.Val))
		if u > p.cfg.MaxDrive {
			u = p.cfg.MaxDrive
		}
		if u < -p.cfg.MaxDrive {
			u = -p.cfg.MaxDrive
		}
		p.drive = u
	}
}

func (p *Plant) dynamics(c *hdlsim.Ctx) {
	for {
		c.WaitTime(sim.Time(p.cfg.StepCycles) * sim.NS(10))
		acc := (p.drive - p.cfg.Friction*p.vel) / p.cfg.Inertia
		p.vel += acc
		p.pos += p.vel
	}
}

func (p *Plant) publishSample() {
	p.samples++
	val := uint32(int32(p.pos))
	p.dout.Set(RegPosition, val)
	p.dout.Set(RegSample, p.samples)
	p.dout.Post(RegPosition, []uint32{val, p.samples})
	p.sim.RaiseDriverInterrupt(IRQSample)
}

// ControllerConfig parameterizes the board-side PI controller.
type ControllerConfig struct {
	Kp, Ki float64
	// Setpoint is the commanded position (milli-units).
	Setpoint float64
	// UpdateCost is the CPU cycles charged per control update.
	UpdateCost uint64
	// Priority of the control thread.
	Priority int
}

// DefaultControllerConfig returns gains tuned for the default plant with
// a tight loop (small T_sync): ~0.5× error decay per control period.
func DefaultControllerConfig() ControllerConfig {
	return ControllerConfig{Kp: 0.1, Ki: 0.002, Setpoint: 1000, UpdateCost: 400, Priority: 6}
}

// Controller is the application software: sampled-position PI control
// through the remote device driver.
type Controller struct {
	cfg     ControllerConfig
	dev     *board.RemoteDev
	integ   float64
	updates uint64
}

// InstallController wires the controller onto a board.
func InstallController(b *board.Board, dev *board.RemoteDev, cfg ControllerConfig) *Controller {
	ctl := &Controller{cfg: cfg, dev: dev}
	sem := b.K.NewSemaphore("servo.sample", 0)
	b.K.AttachInterrupt(IRQSample, nil, func() { sem.Post() })
	b.K.CreateThread("pi-controller", cfg.Priority, func(c *rtos.ThreadCtx) {
		for {
			sem.Wait(c)
			pos := float64(int32(ctl.dev.PeekShadow(RegPosition)))
			err := cfg.Setpoint - pos
			ctl.integ += err
			u := cfg.Kp*err + cfg.Ki*ctl.integ
			c.Charge(cfg.UpdateCost)
			if _, werr := ctl.dev.Write(c, RegCommand, []uint32{uint32(int32(u))}); werr != nil {
				panic(fmt.Sprintf("servo: command write: %v", werr))
			}
			ctl.updates++
		}
	})
	return ctl
}

// Updates returns the number of control updates executed.
func (ctl *Controller) Updates() uint64 { return ctl.updates }

// Quality summarizes one closed-loop run.
type Quality struct {
	IAE        float64 // integral of |setpoint − position| over samples
	Overshoot  float64 // max position beyond the setpoint, fraction
	FinalError float64 // |setpoint − position| at the end
	Settled    bool    // within 5% of setpoint for the final quarter
	Updates    uint64
	Wall       time.Duration
}

// String implements fmt.Stringer.
func (q Quality) String() string {
	return fmt.Sprintf("IAE=%.0f overshoot=%.1f%% final=%.0f settled=%v",
		q.IAE, 100*q.Overshoot, q.FinalError, q.Settled)
}

// RunConfig configures one closed-loop co-simulation.
type RunConfig struct {
	Plant       PlantConfig
	Control     ControllerConfig
	TSync       uint64
	TotalCycles uint64
	BoardCfg    board.Config
}

// DefaultRunConfig returns the experiment defaults.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		Plant:       DefaultPlantConfig(),
		Control:     DefaultControllerConfig(),
		TSync:       250,
		TotalCycles: 120_000,
		BoardCfg:    board.DefaultConfig(),
	}
}

// Run executes the closed loop and scores it. The position is sampled for
// scoring at every sensor sample on the HDL side, so the metric is
// independent of the board's view.
func Run(rc RunConfig) (Quality, error) {
	q, _, err := RunWithTrace(rc)
	return q, err
}

// RunWithTrace is Run, additionally returning the position trace at
// sensor-sample granularity (for plotting step responses).
func RunWithTrace(rc RunConfig) (Quality, []float64, error) {
	var q Quality
	s := hdlsim.NewSimulator("servo")
	clk := s.NewClock("clk", sim.NS(10))
	plant := NewPlant(s, clk, rc.Plant)

	// Score at sample granularity.
	var trace []float64
	s.Method("score", func() {
		trace = append(trace, plant.Position())
	}, clk.Posedge()).DontInitialize()

	brd := board.New(rc.BoardCfg)
	dev, err := brd.NewRemoteDev("/dev/axis", RegPosition, WindowWords, nil)
	if err != nil {
		return q, nil, err
	}
	ctl := InstallController(brd, dev, rc.Control)

	hwT, boardT := cosim.NewInProcPair(1024)
	hw := cosim.NewHWEndpoint(hwT, cosim.SyncAlternating)
	bep := cosim.NewBoardEndpoint(boardT)
	dev.Attach(bep)
	done := make(chan error, 1)
	go func() { done <- brd.Run(bep) }()
	start := time.Now()
	_, err = s.DriverSimulate(clk, hw, hdlsim.DriverConfig{
		TSync:       rc.TSync,
		TotalCycles: rc.TotalCycles,
	})
	q.Wall = time.Since(start)
	hwT.Close()
	if berr := <-done; err == nil && berr != nil {
		err = berr
	}
	if err != nil {
		return q, nil, err
	}

	set := rc.Control.Setpoint
	// Subsample the cycle-granular trace at the sensor period for scoring.
	step := int(rc.Plant.SampleCycles)
	var maxPos float64
	settledFrom := len(trace) * 3 / 4
	settled := true
	for i := 0; i < len(trace); i += step {
		v := trace[i]
		q.IAE += abs(set-v) / float64(len(trace)/step)
		if v > maxPos {
			maxPos = v
		}
		if i >= settledFrom && abs(set-v) > 0.05*set {
			settled = false
		}
	}
	if len(trace) > 0 {
		q.FinalError = abs(set - trace[len(trace)-1])
	}
	if maxPos > set {
		q.Overshoot = (maxPos - set) / set
	}
	q.Settled = settled
	q.Updates = ctl.Updates()
	// Subsampled trace for callers that plot.
	sampled := make([]float64, 0, len(trace)/step+1)
	for i := 0; i < len(trace); i += step {
		sampled = append(sampled, trace[i])
	}
	return q, sampled, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
