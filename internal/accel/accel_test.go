package accel

import (
	"testing"

	"repro/internal/checksum"
	"repro/internal/hdlsim"
	"repro/internal/sim"
)

// fakeEP is a minimal DriverEndpoint that feeds writes and captures
// output, for driving the accelerator without a board.
type fakeEP struct {
	pending []hdlsim.DataMsg
	out     []hdlsim.DataMsg
	ints    []uint8
}

func (f *fakeEP) PollData() []hdlsim.DataMsg {
	p := f.pending
	f.pending = nil
	return p
}
func (f *fakeEP) SendData(m hdlsim.DataMsg) error  { f.out = append(f.out, m); return nil }
func (f *fakeEP) SendInterrupt(irq uint8) error    { f.ints = append(f.ints, irq); return nil }
func (f *fakeEP) Sync(t, h uint64) (uint64, error) { return h, nil }
func (f *fakeEP) Finish(h uint64) error            { return nil }

func drive(t *testing.T, data []byte, bytesPerCycle int) (crc uint16, cyclesToDone uint64, ints int) {
	t.Helper()
	s := hdlsim.NewSimulator("t")
	clk := s.NewClock("clk", sim.NS(10))
	a := New(s, clk, 0x100, 9, bytesPerCycle)
	ep := &fakeEP{}
	words, err := PackBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	ep.pending = append(ep.pending,
		hdlsim.DataMsg{Kind: hdlsim.DataWrite, Addr: 0x100 + RegData, Words: words},
		hdlsim.DataMsg{Kind: hdlsim.DataWrite, Addr: 0x100 + RegLen, Words: []uint32{uint32(len(data))}},
		hdlsim.DataMsg{Kind: hdlsim.DataWrite, Addr: 0x100 + RegCtrl, Words: []uint32{1}},
	)
	st, err := s.DriverSimulate(clk, ep, hdlsim.DriverConfig{
		// A small quantum so StopEarly (polled at sync boundaries) ends
		// the run promptly once the engine reports completion.
		TSync:       5,
		TotalCycles: 1000,
		StopEarly:   func() bool { return a.Done() > 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Done() != 1 {
		t.Fatalf("accelerator completed %d ops", a.Done())
	}
	if len(ep.out) == 0 {
		t.Fatal("no result posted")
	}
	last := ep.out[len(ep.out)-1]
	if last.Addr != 0x100+RegResult || len(last.Words) != 2 || last.Words[1] != 1 {
		t.Fatalf("result message %+v", last)
	}
	return uint16(last.Words[0]), st.Cycles, len(ep.ints)
}

func TestCRCAcceleratorCorrectness(t *testing.T) {
	for _, msg := range []string{"123456789", "x", "", "factory automation packet payload ..."} {
		data := []byte(msg)
		crc, _, ints := drive(t, data, 4)
		if crc != checksum.CRC16CCITT(data) {
			t.Fatalf("CRC(%q) = %#04x, want %#04x", msg, crc, checksum.CRC16CCITT(data))
		}
		if ints != 1 {
			t.Fatalf("raised %d interrupts", ints)
		}
	}
}

func TestCRCAcceleratorThroughputModel(t *testing.T) {
	data := make([]byte, 128)
	_, slow, _ := drive(t, data, 1) // 1 B/cycle → ≥ 128 cycles
	_, fast, _ := drive(t, data, 16)
	if slow <= fast {
		t.Fatalf("narrow datapath (%d cycles) not slower than wide (%d)", slow, fast)
	}
	if slow < 128 {
		t.Fatalf("1 B/cycle finished 128 bytes in %d cycles", slow)
	}
}

func TestPackBytes(t *testing.T) {
	words, err := PackBytes([]byte{0x11, 0x22, 0x33, 0x44, 0x55})
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 2 || words[0] != 0x44332211 || words[1] != 0x55 {
		t.Fatalf("packed %#v", words)
	}
	if _, err := PackBytes(make([]byte, MaxBytes+1)); err == nil {
		t.Fatal("oversized message accepted")
	}
}

func TestBadConfigPanics(t *testing.T) {
	s := hdlsim.NewSimulator("t")
	clk := s.NewClock("clk", sim.NS(10))
	defer func() {
		if recover() == nil {
			t.Fatal("bytesPerCycle 0 accepted")
		}
	}()
	New(s, clk, 0, 9, 0)
}
