// Package accel provides the CRC-16 hardware accelerator model used by
// the hardware/software partitioning example: a device under design that
// a factory-automation board might gain as an FPGA extension — precisely
// the virtual-prototyping use case of the paper's introduction. The model
// is cycle-timed (a configurable number of bytes per clock) and speaks
// the same driver-port protocol as any device in this framework, so the
// board can drive it before any RTL exists.
package accel

import (
	"fmt"

	"repro/internal/checksum"
	"repro/internal/hdlsim"
)

// Register map (word offsets within the device window).
const (
	// Board-writable registers (the device's driver_in).
	RegLen  = 0x00 // byte count of the message
	RegCtrl = 0x01 // writing 1 starts the computation
	RegData = 0x08 // message bytes, packed 4 per word, little-endian
	// MaxBytes bounds one message.
	MaxBytes  = 256
	dataWords = MaxBytes / 4
	inWords   = RegData + dataWords

	// Board-readable registers (the device's driver_out).
	RegResult = 0x80 // the CRC (valid when RegStatus == 1)
	RegStatus = 0x81 // 0 = busy/idle, 1 = done (cleared on next start)
	outWords  = 2

	// WindowWords is the full device window a board maps.
	WindowWords = RegStatus + 1
)

// CRC is the accelerator model.
type CRC struct {
	hdlsim.BaseModule

	sim  *hdlsim.Simulator
	clk  *hdlsim.Clock
	base uint32
	irq  uint8

	din  *hdlsim.DriverIn
	dout *hdlsim.DriverOut

	lenReg  uint32
	data    [dataWords]uint32
	start   *hdlsim.Event
	busy    bool
	started uint64
	done    uint64

	// BytesPerCycle is the modelled datapath width (default 4: one word
	// per clock).
	bytesPerCycle uint32
}

// New instantiates the accelerator at the given window base. irq is the
// interrupt line raised on completion; bytesPerCycle sets the datapath
// throughput (≥ 1).
func New(s *hdlsim.Simulator, clk *hdlsim.Clock, base uint32, irq uint8, bytesPerCycle int) *CRC {
	if bytesPerCycle < 1 {
		panic("accel: bytesPerCycle must be ≥ 1")
	}
	a := &CRC{
		BaseModule:    hdlsim.BaseModule{Name: "crc-accel"},
		sim:           s,
		clk:           clk,
		base:          base,
		irq:           irq,
		bytesPerCycle: uint32(bytesPerCycle),
	}
	a.din = s.NewDriverIn("crc.in", base, inWords)
	a.dout = s.NewDriverOut("crc.out", base+RegResult, outWords)
	a.start = s.NewEvent("crc.start")
	s.DriverProcess("crc.driver", a.onWrite, a.din)
	s.Thread("crc.engine", a.engine)
	return a
}

// Started returns how many computations have begun.
func (a *CRC) Started() uint64 { return a.started }

// Done returns how many computations have completed.
func (a *CRC) Done() uint64 { return a.done }

// onWrite is the driver_process collecting board writes.
func (a *CRC) onWrite() {
	for {
		w, ok := a.din.Pop()
		if !ok {
			return
		}
		switch off := w.Addr - a.base; {
		case off == RegLen:
			a.lenReg = w.Val
		case off == RegCtrl:
			if w.Val&1 != 0 && !a.busy {
				a.busy = true
				a.start.Notify()
			}
		case off >= RegData && off < RegData+dataWords:
			a.data[off-RegData] = w.Val
		}
	}
}

// engine is the datapath model: consume the message at bytesPerCycle,
// then publish the result and raise the interrupt.
func (a *CRC) engine(c *hdlsim.Ctx) {
	for {
		c.Wait(a.start)
		n := a.lenReg
		if n > MaxBytes {
			n = MaxBytes
		}
		cycles := (n + a.bytesPerCycle - 1) / a.bytesPerCycle
		if cycles == 0 {
			cycles = 1
		}
		a.started++
		c.WaitCycles(a.clk, uint64(cycles))
		buf := make([]byte, n)
		for i := uint32(0); i < n; i++ {
			buf[i] = byte(a.data[i/4] >> (8 * (i % 4)))
		}
		crc := uint32(checksum.CRC16CCITT(buf))
		a.dout.Set(a.base+RegResult, crc)
		a.dout.Set(a.base+RegStatus, 1)
		a.dout.Post(a.base+RegResult, []uint32{crc, 1})
		a.sim.RaiseDriverInterrupt(a.irq)
		a.busy = false
		a.done++
	}
}

// PackBytes packs a byte message into the data-register layout; the board
// application uses it to marshal messages for the device.
func PackBytes(data []byte) ([]uint32, error) {
	if len(data) > MaxBytes {
		return nil, fmt.Errorf("accel: message of %d bytes exceeds max %d", len(data), MaxBytes)
	}
	words := make([]uint32, (len(data)+3)/4)
	for i, b := range data {
		words[i/4] |= uint32(b) << (8 * (i % 4))
	}
	return words, nil
}
