package repro

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestBinariesEndToEnd builds cosim-hw and cosim-board and runs the
// paper's deployment shape for real: two OS processes, three TCP channels,
// the simulator mastering time. It asserts both sides agree on the final
// outcome.
func TestBinariesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in -short")
	}
	dir := t.TempDir()
	hwBin := filepath.Join(dir, "cosim-hw")
	boardBin := filepath.Join(dir, "cosim-board")
	for _, b := range []struct{ out, pkg string }{
		{hwBin, "./cmd/cosim-hw"},
		{boardBin, "./cmd/cosim-board"},
	} {
		cmd := exec.Command("go", "build", "-o", b.out, b.pkg)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", b.pkg, err, out)
		}
	}

	hw := exec.Command(hwBin, "-listen", "127.0.0.1:0", "-tsync", "500", "-n", "40")
	hwOut, err := hw.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	hw.Stderr = os.Stderr
	if err := hw.Start(); err != nil {
		t.Fatal(err)
	}
	defer hw.Process.Kill()

	// Parse the listening address from the first line.
	sc := bufio.NewScanner(hwOut)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr = strings.Fields(line[i+len("listening on "):])[0]
			break
		}
	}
	if addr == "" {
		t.Fatal("cosim-hw did not announce its address")
	}

	board := exec.Command(boardBin, "-connect", addr)
	boardBytes, err := board.Output()
	if err != nil {
		t.Fatalf("cosim-board: %v", err)
	}

	// Collect the rest of the HW output. The pipe must be drained to EOF
	// *before* Wait (os/exec contract), so EOF doubles as the exit signal.
	hwRest := make(chan string, 1)
	go func() {
		var sb strings.Builder
		for sc.Scan() {
			sb.WriteString(sc.Text())
			sb.WriteString("\n")
		}
		hwRest <- sb.String()
	}()
	var hwText string
	select {
	case hwText = <-hwRest:
	case <-time.After(60 * time.Second):
		t.Fatal("cosim-hw did not finish its output")
	}
	if err := hw.Wait(); err != nil {
		t.Fatalf("cosim-hw exited: %v", err)
	}
	boardText := string(boardBytes)

	for _, want := range []string{"accuracy=100.0%", "forwarded=40", "integrityErrors=0"} {
		if !strings.Contains(hwText, want) {
			t.Fatalf("hw output missing %q:\n%s", want, hwText)
		}
	}
	for _, want := range []string{"verified=40", "corrupt=0"} {
		if !strings.Contains(boardText, want) {
			t.Fatalf("board output missing %q:\n%s", want, boardText)
		}
	}
	// Both sides report the same board time.
	var hwCy, boardCy uint64
	fmt.Sscanf(afterToken(hwText, "board time: "), "%d", &hwCy)
	fmt.Sscanf(afterToken(boardText, "finished at "), "%d", &boardCy)
	if hwCy == 0 || hwCy != boardCy {
		t.Fatalf("board time disagreement: hw says %d, board says %d", hwCy, boardCy)
	}
}

func afterToken(s, token string) string {
	if i := strings.Index(s, token); i >= 0 {
		return s[i+len(token):]
	}
	return ""
}
