// Package repro's root benchmark suite: one benchmark per evaluation
// figure of the paper plus the DESIGN.md ablations. Each benchmark runs a
// scaled-down instance of the corresponding experiment (the full sweeps
// live in cmd/cosim-experiments) and reports the figure's key quantity as
// a custom metric, so `go test -bench=. -benchmem` regenerates the whole
// evaluation in miniature.
package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cosim"
	"repro/internal/router"
	"repro/internal/servo"
)

// benchRun executes one co-simulation with the given overrides.
func benchRun(b *testing.B, n int, tsync uint64, mutate func(*router.RunConfig)) router.RunResult {
	b.Helper()
	rc := router.DefaultRunConfig()
	rc.TB.PacketsPerPort = n / rc.TB.Ports
	rc.TSync = tsync
	if mutate != nil {
		mutate(&rc)
	}
	res, err := router.Run(context.Background(), router.Transports{}, router.WithConfig(rc))
	if err != nil {
		b.Fatal(err)
	}
	if res.Conservation != nil {
		b.Fatal(res.Conservation)
	}
	return res
}

// BenchmarkFig5OverheadVsN regenerates Figure 5's axes: wall time (ns/op)
// as a function of N for two T_sync values. Linearity in N and the
// slope gap between the sub-benchmarks are the figure's claims.
func BenchmarkFig5OverheadVsN(b *testing.B) {
	for _, n := range []int{20, 40, 80} {
		for _, ts := range []uint64{1000, 10000} {
			b.Run(fmt.Sprintf("N=%d/Tsync=%d", n, ts), func(b *testing.B) {
				var syncs uint64
				for i := 0; i < b.N; i++ {
					res := benchRun(b, n, ts, func(rc *router.RunConfig) {
						rc.Transport = router.TransportTCP
						rc.TB.Period = 10000 // sparse workload: sync-dominated regime
					})
					syncs = res.HW.SyncEvents
				}
				b.ReportMetric(float64(syncs), "syncs/op")
			})
		}
	}
}

// BenchmarkFig6OverheadVsTsync regenerates Figure 6's axis: wall time per
// run across a log-spaced T_sync sweep (the loopback baseline is the last
// sub-benchmark). ns/op decaying toward the baseline as T_sync grows is
// the figure's claim.
func BenchmarkFig6OverheadVsTsync(b *testing.B) {
	const n = 40
	for _, ts := range []uint64{1, 10, 100, 1000, 10000} {
		b.Run(fmt.Sprintf("Tsync=%d", ts), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchRun(b, n, ts, func(rc *router.RunConfig) {
					rc.Transport = router.TransportTCP
				})
			}
		})
	}
	b.Run("baseline=unsync", func(b *testing.B) {
		tbc := router.DefaultTBConfig()
		tbc.PacketsPerPort = n / tbc.Ports
		for i := 0; i < b.N; i++ {
			if _, err := router.RunLoopback(tbc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig7AccuracyVsTsync regenerates Figure 7: the accuracy_pct
// metric must read 100 on the plateau and decline past the knee at
// T_sync ≈ 5000.
func BenchmarkFig7AccuracyVsTsync(b *testing.B) {
	for _, ts := range []uint64{1000, 4000, 6000, 10000, 20000} {
		b.Run(fmt.Sprintf("Tsync=%d", ts), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				res := benchRun(b, 100, ts, nil)
				acc = res.Accuracy
			}
			b.ReportMetric(100*acc, "accuracy_pct")
		})
	}
}

// BenchmarkFig8QualityVsTsync reports the derived accuracy×speedup metric
// used for the optimal-T_sync selection (wall time is ns/op; quality uses
// the accuracy metric divided by time relative to the tightest point).
func BenchmarkFig8QualityVsTsync(b *testing.B) {
	for _, ts := range []uint64{1000, 4000, 8000} {
		b.Run(fmt.Sprintf("Tsync=%d", ts), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				res := benchRun(b, 100, ts, func(rc *router.RunConfig) {
					rc.Transport = router.TransportTCP
				})
				acc = res.Accuracy
			}
			b.ReportMetric(100*acc, "accuracy_pct")
		})
	}
}

// BenchmarkE2ServoQuality regenerates experiment E2 in miniature: the
// closed-loop servo's settling behaviour across the coupling spectrum
// (accuracy metric: integral absolute error; small = good, huge =
// unstable loop).
func BenchmarkE2ServoQuality(b *testing.B) {
	for _, ts := range []uint64{250, 2000, 6000} {
		b.Run(fmt.Sprintf("Tsync=%d", ts), func(b *testing.B) {
			var iae float64
			for i := 0; i < b.N; i++ {
				rc := servo.DefaultRunConfig()
				rc.TSync = ts
				q, err := servo.Run(rc)
				if err != nil {
					b.Fatal(err)
				}
				iae = q.IAE
			}
			b.ReportMetric(iae, "IAE")
		})
	}
}

// BenchmarkAblationSyncPolicies compares lockstep, quantum and
// unsynchronized coupling (A1).
func BenchmarkAblationSyncPolicies(b *testing.B) {
	const n = 20
	b.Run("lockstep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchRun(b, n, 1, nil)
		}
	})
	b.Run("quantum=1000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchRun(b, n, 1000, nil)
		}
	})
	b.Run("unsynchronized", func(b *testing.B) {
		tbc := router.DefaultTBConfig()
		tbc.PacketsPerPort = n / tbc.Ports
		for i := 0; i < b.N; i++ {
			if _, err := router.RunLoopback(tbc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationTimingModel compares ISS-measured vs annotated software
// timing (A2).
func BenchmarkAblationTimingModel(b *testing.B) {
	for _, timing := range []router.TimingModel{router.TimingISS, router.TimingAnnotated} {
		b.Run(timing.String(), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				res := benchRun(b, 40, 2000, func(rc *router.RunConfig) {
					rc.AppCfg.Timing = timing
				})
				acc = res.Accuracy
			}
			b.ReportMetric(100*acc, "accuracy_pct")
		})
	}
}

// BenchmarkAblationTransport compares per-sync cost across transports (A3)
// in the lockstep regime where sync cost dominates.
func BenchmarkAblationTransport(b *testing.B) {
	for _, tr := range []router.TransportKind{router.TransportInProc, router.TransportTCP} {
		b.Run(tr.String(), func(b *testing.B) {
			var syncs uint64
			for i := 0; i < b.N; i++ {
				res := benchRun(b, 12, 1, func(rc *router.RunConfig) {
					rc.Transport = tr
				})
				syncs = res.HW.SyncEvents
			}
			b.ReportMetric(float64(syncs), "syncs/op")
		})
	}
}

// BenchmarkAblationMultiBoard compares one vs two boards under a heavy
// verification kernel (A5); the accuracy metric shows the recovery.
func BenchmarkAblationMultiBoard(b *testing.B) {
	mkCfg := func() router.RunConfig {
		rc := router.DefaultRunConfig()
		rc.TB.PacketsPerPort = 25
		rc.TSync = 2000
		rc.AppCfg.Timing = router.TimingAnnotated
		rc.AppCfg.AnnotatedBase = 40000
		return rc
	}
	b.Run("boards=1", func(b *testing.B) {
		var acc float64
		for i := 0; i < b.N; i++ {
			res, err := router.Run(context.Background(), router.Transports{}, router.WithConfig(mkCfg()))
			if err != nil {
				b.Fatal(err)
			}
			acc = res.Accuracy
		}
		b.ReportMetric(100*acc, "accuracy_pct")
	})
	b.Run("boards=2", func(b *testing.B) {
		var acc float64
		for i := 0; i < b.N; i++ {
			res, err := router.RunCoSimMulti(mkCfg(), 2)
			if err != nil {
				b.Fatal(err)
			}
			acc = res.Accuracy
		}
		b.ReportMetric(100*acc, "accuracy_pct")
	})
}

// BenchmarkAblationSyncMode compares alternating vs pipelined quantum
// scheduling (A4).
func BenchmarkAblationSyncMode(b *testing.B) {
	for _, mode := range []cosim.SyncMode{cosim.SyncAlternating, cosim.SyncPipelined} {
		b.Run(mode.String(), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				res := benchRun(b, 40, 4000, func(rc *router.RunConfig) {
					rc.Transport = router.TransportTCP
					rc.Mode = mode
				})
				acc = res.Accuracy
			}
			b.ReportMetric(100*acc, "accuracy_pct")
		})
	}
}
