package repro

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/router"
)

var hwSyncCountRe = regexp.MustCompile(`cosim_sync_rendezvous_seconds_count\{side="hw"\} (\d+)`)

// scrapeHWSyncCount GETs /metrics and returns the HW-side CLOCK
// rendezvous histogram count (0 when the metric is not exposed yet).
func scrapeHWSyncCount(t *testing.T, url string) uint64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	m := hwSyncCountRe.FindSubmatch(body)
	if m == nil {
		return 0
	}
	n, err := strconv.ParseUint(string(m[1]), 10, 64)
	if err != nil {
		t.Fatalf("scrape: parsing %q: %v", m[1], err)
	}
	return n
}

// TestLiveMetricsAdvanceDuringRun is the observability integration test:
// a real co-simulation runs with an obs.Registry attached while an HTTP
// scraper (the debug server's handler under httptest) polls /metrics
// and watches the HW-side CLOCK rendezvous histogram count advance
// mid-run — the same loop a Prometheus scrape of `cosim-hw -debug-addr`
// would perform.
func TestLiveMetricsAdvanceDuringRun(t *testing.T) {
	reg := obs.NewRegistry()
	srv := httptest.NewServer(obs.Handler(reg))
	defer srv.Close()

	rc := router.DefaultRunConfig()
	rc.Obs = reg
	// Small quantum + a per-message link delay stretch the run's wall
	// time to a few hundred ms so scrapes land while time is advancing.
	rc.TSync = 500
	rc.LinkDelay = 200 * time.Microsecond
	rc.TB.PacketsPerPort = 48 / rc.TB.Ports

	type outcome struct {
		res router.RunResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := router.Run(context.Background(), router.Transports{}, router.WithConfig(rc))
		done <- outcome{res, err}
	}()

	// Poll until the run finishes, recording each distinct nonzero count.
	var seen []uint64
	var result outcome
	deadline := time.After(60 * time.Second)
poll:
	for {
		select {
		case result = <-done:
			break poll
		case <-deadline:
			t.Fatal("co-simulation did not finish within 60s")
		case <-time.After(2 * time.Millisecond):
			if n := scrapeHWSyncCount(t, srv.URL); n > 0 && (len(seen) == 0 || n != seen[len(seen)-1]) {
				seen = append(seen, n)
			}
		}
	}
	if result.err != nil {
		t.Fatalf("Run: %v", result.err)
	}

	if len(seen) < 2 {
		t.Fatalf("wanted at least 2 distinct mid-run rendezvous counts on /metrics, saw %v", seen)
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] < seen[i-1] {
			t.Fatalf("rendezvous count went backwards: %v", seen)
		}
	}

	// After the run the scraped total must agree with the run's own
	// sync-event count (the final grant can go unacknowledged, so the
	// histogram may trail by the in-flight depth).
	final := scrapeHWSyncCount(t, srv.URL)
	if final < seen[len(seen)-1] {
		t.Fatalf("final count %d below last mid-run count %d", final, seen[len(seen)-1])
	}
	syncs := result.res.HW.SyncEvents
	if final > syncs || syncs-final > 2 {
		t.Fatalf("final scraped count %d inconsistent with HW SyncEvents %d", final, syncs)
	}

	// The run's gauges must be published too.
	metrics := fetch(t, srv.URL+"/metrics")
	for _, want := range []string{
		"router_runs_completed_total 1",
		`cosim_sync_rendezvous_seconds_count{side="board"}`,
		"router_last_accuracy_pct",
	} {
		if !containsLine(metrics, want) {
			t.Errorf("final /metrics missing %q", want)
		}
	}
}

func fetch(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return string(body)
}

func containsLine(body, prefix string) bool {
	for _, line := range regexp.MustCompile(`\r?\n`).Split(body, -1) {
		if len(line) >= len(prefix) && line[:len(prefix)] == prefix {
			return true
		}
	}
	return false
}
