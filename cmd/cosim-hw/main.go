// Command cosim-hw runs the hardware-simulator side of the co-simulation:
// the SystemC-like kernel with the 4-port router testbench, listening for
// a board to connect over TCP — the role of the host PC in the paper's
// setup. Start it first, then launch cosim-board against the printed
// address.
//
//	cosim-hw -listen 127.0.0.1:9000 -tsync 1000 -n 100
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cosim"
	"repro/internal/hdlsim"
	"repro/internal/obs"
	"repro/internal/router"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "TCP address to listen on")
	shmPath := flag.String("shm-path", "", "create a shared-memory link file at this path and serve the board through it instead of TCP")
	tsync := flag.Uint64("tsync", 1000, "synchronization interval in clock cycles")
	n := flag.Int("n", 100, "total packets to exchange (spread over 4 producers)")
	period := flag.Uint64("period", 1250, "per-producer packet period in cycles")
	fifo := flag.Int("fifo", 4, "router input FIFO capacity in packets")
	errRate := flag.Float64("errrate", 0, "fraction of deliberately corrupted packets")
	seed := flag.Int64("seed", 1, "traffic seed")
	pipelined := flag.Bool("pipelined", false, "overlap board and simulator quanta")
	tracePath := flag.String("trace", "", "write a protocol trace to this file")
	debugAddr := flag.String("debug-addr", "", "serve live metrics and pprof on this address (e.g. :6060)")
	flag.Parse()

	var reg *obs.Registry
	if *debugAddr != "" {
		reg = obs.NewRegistry()
		dbg, err := obs.Serve(*debugAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cosim-hw: %v\n", err)
			os.Exit(1)
		}
		defer dbg.Close()
		fmt.Printf("cosim-hw: debug server on http://%s (/metrics /metrics.json /healthz /debug/pprof)\n", dbg.Addr())
	}

	tbc := router.DefaultTBConfig()
	tbc.PacketsPerPort = *n / tbc.Ports
	tbc.Period = *period
	tbc.FIFOCap = *fifo
	tbc.ErrRate = *errRate
	tbc.Seed = *seed
	tb := router.BuildTestbench(tbc)

	var tr cosim.Transport
	if *shmPath != "" {
		t, err := cosim.CreateShm(*shmPath, cosim.ShmConfig{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cosim-hw: %v\n", err)
			os.Exit(1)
		}
		defer os.Remove(*shmPath)
		tr = t
		fmt.Printf("cosim-hw: shm link ready at %s; waiting for board...\n", *shmPath)
	} else {
		ln, err := cosim.ListenTCP(*listen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cosim-hw: %v\n", err)
			os.Exit(1)
		}
		defer ln.Close()
		fmt.Printf("cosim-hw: listening on %s (DATA/INT/CLOCK channels); waiting for board...\n", ln.Addr())
		tr, err = ln.Accept()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cosim-hw: accept: %v\n", err)
			os.Exit(1)
		}
	}
	defer tr.Close()
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cosim-hw: trace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		tr = cosim.NewTraceTransport(tr, f)
	}
	if *shmPath != "" {
		fmt.Println("cosim-hw: starting driver_simulate (board attaches via shm)")
	} else {
		fmt.Println("cosim-hw: board connected; starting driver_simulate")
	}

	mode := cosim.SyncAlternating
	if *pipelined {
		mode = cosim.SyncPipelined
	}
	ep := cosim.NewHWEndpoint(tr, mode)
	if reg != nil {
		ep.Observe(reg)
	}
	stats, err := tb.Sim.DriverSimulate(tb.Clk, ep, hdlsim.DriverConfig{
		TSync:       *tsync,
		TotalCycles: tbc.WorkCycles() + 8**tsync + 20000,
		StopEarly:   tb.Finished,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cosim-hw: %v\n", err)
		os.Exit(1)
	}
	rs := tb.Router.Stats()
	cs := tb.ConsumerTotals()
	bc, bt := ep.BoardTime()
	fmt.Printf("cosim-hw: done at %v\n", tb.Sim.Now())
	fmt.Printf("  cycles=%d syncs=%d interrupts=%d data(in/out)=%d/%d\n",
		stats.Cycles, stats.SyncEvents, stats.Interrupts, stats.DataIn, stats.DataOut)
	fmt.Printf("  packets: generated=%d forwarded=%d droppedFull=%d droppedChecksum=%d\n",
		tb.Generated(), rs.Forwarded, rs.DroppedFull, rs.DroppedChecksum)
	fmt.Printf("  consumers: received=%d integrityErrors=%d misrouted=%d\n",
		cs.Received, cs.IntegrityError, cs.Misrouted)
	fmt.Printf("  accuracy=%.1f%%  board time: %d cycles / %d sw ticks\n",
		100*float64(rs.Forwarded)/float64(tb.Generated()), bc, bt)
	fmt.Printf("  link: sent=%dB syncWait=%v wall=%v\n",
		ep.Metrics().BytesSent, ep.Metrics().SyncWait, ep.Metrics().Wall)
}
