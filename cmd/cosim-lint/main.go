// Command cosim-lint runs the repo's custom static analyzers over Go
// packages and reports contract violations:
//
//	msgownership  pooled Msg Send/Recv/Release ownership contract
//	determinism   no wall-clock/unseeded-rand/goroutines/map-order in simulated time
//	obshandle     hoisted obs metric handles, Unwrap on wrapping transports
//
// Usage:
//
//	cosim-lint [-json] [-out FILE] [-analyzers a,b] [packages]
//
// Patterns default to ./... relative to the current directory. Exit
// status is 1 when findings are reported, 2 on operational errors.
// See docs/STATIC_ANALYSIS.md for the analyzer catalog and the
// //cosim: directive reference.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(argv []string) int {
	fs := flag.NewFlagSet("cosim-lint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	outFile := fs.String("out", "", "also write the JSON findings to this file (written even when clean)")
	only := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := fs.Bool("list", false, "list the available analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: cosim-lint [-json] [-out FILE] [-analyzers a,b] [packages]\n\n")
		fmt.Fprintf(fs.Output(), "Analyzers:\n")
		for _, a := range allAnalyzers() {
			fmt.Fprintf(fs.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(fs.Output(), "\nFlags:\n")
		fs.PrintDefaults()
	}
	fs.Parse(argv)

	if *list {
		for _, a := range allAnalyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cosim-lint:", err)
		return 2
	}

	patterns := fs.Args()
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cosim-lint:", err)
		return 2
	}

	loaded, err := lint.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cosim-lint:", err)
		return 2
	}
	diags, err := lint.RunAnalyzers(loaded, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cosim-lint:", err)
		return 2
	}

	// Repo-relative paths read better and keep CI artifacts portable.
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}

	if *outFile != "" {
		if err := writeJSON(*outFile, diags); err != nil {
			fmt.Fprintln(os.Stderr, "cosim-lint:", err)
			return 2
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diagsOrEmpty(diags)); err != nil {
			fmt.Fprintln(os.Stderr, "cosim-lint:", err)
			return 2
		}
	} else {
		printSummary(os.Stdout, diags)
	}

	if len(diags) > 0 {
		return 1
	}
	return 0
}

func allAnalyzers() []*lint.Analyzer {
	return []*lint.Analyzer{lint.MsgOwnership, lint.Determinism, lint.ObsHandle}
}

func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	all := allAnalyzers()
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var sel []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (run -list for the catalog)", name)
		}
		sel = append(sel, a)
	}
	if len(sel) == 0 {
		return nil, fmt.Errorf("-analyzers selected nothing")
	}
	return sel, nil
}

func diagsOrEmpty(d []lint.Diagnostic) []lint.Diagnostic {
	if d == nil {
		return []lint.Diagnostic{}
	}
	return d
}

func writeJSON(path string, diags []lint.Diagnostic) error {
	data, err := json.MarshalIndent(diagsOrEmpty(diags), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// printSummary renders a per-file grouping with a trailing total, the
// human-readable counterpart of the JSON artifact.
func printSummary(w *os.File, diags []lint.Diagnostic) {
	if len(diags) == 0 {
		fmt.Fprintln(w, "cosim-lint: no findings")
		return
	}
	byFile := make(map[string][]lint.Diagnostic)
	var files []string
	for _, d := range diags {
		if _, ok := byFile[d.File]; !ok {
			files = append(files, d.File)
		}
		byFile[d.File] = append(byFile[d.File], d)
	}
	sort.Strings(files)
	for _, f := range files {
		fmt.Fprintf(w, "%s (%d):\n", f, len(byFile[f]))
		for _, d := range byFile[f] {
			fmt.Fprintf(w, "  %s\n", d.String())
		}
	}
	fmt.Fprintf(w, "cosim-lint: %d finding(s)\n", len(diags))
}
