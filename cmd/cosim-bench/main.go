// Command cosim-bench runs miniature versions of the paper's evaluation
// benchmarks (Figures 5–7, plus a chaos/resilience point) and emits a
// stable machine-readable BENCH_cosim.json:
//
//	cosim-bench -runs 3 -out BENCH_cosim.json
//
// Each benchmark executes one scaled-down co-simulation several times
// and keeps the fastest run (the minimum is the least noisy wall-clock
// estimator), reporting ns/op plus derived rates: CLOCK rendezvous per
// wall-clock second, wire bytes per quantum, accuracy, and session
// retransmits. The JSON is the artifact the CI regression gate
// (cmd/cosim-benchcmp) compares against a committed baseline, so the
// repository records a perf trajectory instead of an empty one.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/cosim"
	"repro/internal/experiments"
	"repro/internal/farm"
	"repro/internal/fleet"
	"repro/internal/router"
)

// Result is one benchmark's measurement. Fields are flat and stable:
// cosim-benchcmp and future tooling key on Name and read NsPerOp.
type Result struct {
	Name             string  `json:"name"`
	Runs             int     `json:"runs"`
	NsPerOp          int64   `json:"ns_per_op"`
	SyncsPerSec      float64 `json:"syncs_per_sec,omitempty"`
	BytesPerQuantum  float64 `json:"bytes_per_quantum,omitempty"`
	FramesPerQuantum float64 `json:"frames_per_quantum,omitempty"`
	AllocsPerQuantum float64 `json:"allocs_per_quantum,omitempty"`
	AccuracyPct      float64 `json:"accuracy_pct,omitempty"`
	Retransmits      uint64  `json:"retransmits,omitempty"`
	SessionsPerSec   float64 `json:"sessions_per_sec,omitempty"`
}

// File is the BENCH_cosim.json schema.
type File struct {
	Schema     int      `json:"schema"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Benchmarks []Result `json:"benchmarks"`
}

// bench is one named configuration to measure.
type bench struct {
	name string
	run  func() (router.RunResult, error)
}

// cosimBench builds a co-simulation benchmark from config overrides.
func cosimBench(name string, n int, tsync uint64, mutate func(*router.RunConfig)) bench {
	return bench{name: name, run: func() (router.RunResult, error) {
		rc := router.DefaultRunConfig()
		rc.TB.PacketsPerPort = n / rc.TB.Ports
		rc.TSync = tsync
		if mutate != nil {
			mutate(&rc)
		}
		res, err := router.Run(context.Background(), router.Transports{}, router.WithConfig(rc))
		if err != nil {
			return res, err
		}
		if res.Conservation != nil {
			return res, res.Conservation
		}
		return res, nil
	}}
}

// benches assembles the suite: the miniature Fig.5/6/7 axes mirrored
// from the root bench_test.go, plus one chaos/resilience point so the
// retransmit trajectory is recorded too.
func benches() []bench {
	var out []bench
	// Fig.5 regime: sparse workload over TCP, sync cost dominates.
	for _, n := range []int{20, 40, 80} {
		for _, ts := range []uint64{1000, 10000} {
			out = append(out, cosimBench(
				fmt.Sprintf("Fig5/N=%d/Tsync=%d", n, ts), n, ts,
				func(rc *router.RunConfig) {
					rc.Transport = router.TransportTCP
					rc.TB.Period = 10000
				}))
		}
	}
	// Fig.6 axis: overhead decay with T_sync over TCP, plus the
	// unsynchronized loopback baseline.
	for _, ts := range []uint64{1, 10, 100, 1000, 10000} {
		out = append(out, cosimBench(
			fmt.Sprintf("Fig6/Tsync=%d", ts), 40, ts,
			func(rc *router.RunConfig) { rc.Transport = router.TransportTCP }))
	}
	out = append(out, bench{name: "Fig6/baseline=unsync", run: func() (router.RunResult, error) {
		tbc := router.DefaultTBConfig()
		tbc.PacketsPerPort = 40 / tbc.Ports
		return router.RunLoopback(tbc)
	}})
	// Fig.7 axis: accuracy across the knee, deterministic in-process.
	for _, ts := range []uint64{1000, 4000, 6000, 10000, 20000} {
		out = append(out, cosimBench(fmt.Sprintf("Fig7/Tsync=%d", ts), 100, ts, nil))
	}
	// Adaptive regime: the Fig.5 miniature at the pathological TSync=1 —
	// a rendezvous every cycle — paired with the same workload under
	// lookahead elongation + frame batching. The pair is the tentpole's
	// tracked speedup; both report boundaries/sec, so the adaptive run's
	// elided rendezvous count toward its rate.
	for _, pt := range []struct {
		name     string
		adaptive bool
	}{{"plain", false}, {"adaptive", true}} {
		adaptive := pt.adaptive
		out = append(out, cosimBench(
			fmt.Sprintf("Adaptive/Fig5/Tsync=1/%s", pt.name), 20, 1,
			func(rc *router.RunConfig) {
				rc.Transport = router.TransportTCP
				rc.TB.Period = 10000
				rc.Adaptive = adaptive
				rc.Batch = adaptive
			}))
	}
	// Transport family: the Fig.5 miniature at the pathological TSync=1 —
	// a rendezvous every cycle, so per-frame transport cost dominates wall
	// clock — across the three host-link transports. This is the tcp/uds/shm
	// triple the zero-copy work is judged by (cosim-benchcmp asserts shm's
	// speedup over tcp); shm is emitted only where the platform supports it.
	for _, tk := range []router.TransportKind{router.TransportTCP, router.TransportUDS, router.TransportShm} {
		if tk == router.TransportShm && !cosim.ShmSupported() {
			continue
		}
		kind := tk
		out = append(out, cosimBench(
			fmt.Sprintf("Transport/Fig5/N=20/%s", kind), 20, 1,
			func(rc *router.RunConfig) {
				rc.Transport = kind
				rc.TB.Period = 10000
			}))
	}
	// Federation family: the same miniature workload driven by the
	// hierarchical time manager instead of the pairwise driver loop.
	// K=2 measures the manager's overhead on a topology the pairwise
	// engine could also run (it must stay bit-identical, so the delta is
	// pure scheduling cost); Boards=2 and Pulse=2 track the genuinely
	// N-party schedules the old loop could not express.
	out = append(out, cosimBench("Federation/K=2", 200, 1000, func(rc *router.RunConfig) {
		rc.Federation = &router.FederationConfig{Boards: 1}
	}))
	out = append(out, cosimBench("Federation/Boards=2", 200, 1000, func(rc *router.RunConfig) {
		rc.Federation = &router.FederationConfig{Boards: 2}
	}))
	out = append(out, cosimBench("Federation/Pulse=2", 200, 1000, func(rc *router.RunConfig) {
		rc.Federation = &router.FederationConfig{Boards: 1, PulseDevices: 2}
	}))
	// Chaos point: a faulty link healed by the session layer; the
	// retransmit count is the tracked quantity.
	out = append(out, cosimBench("Chaos/session", 40, 1000, func(rc *router.RunConfig) {
		sc := cosim.UniformScenario(42, cosim.FaultProfile{Drop: 0.02, Duplicate: 0.02, Corrupt: 0.02})
		rc.Chaos = &sc
		sess := cosim.DefaultSessionConfig()
		sess.RetransmitTimeout = 20 * time.Millisecond
		rc.Resilience = &sess
	}))
	return out
}

// measureFarm runs the multi-session farm load several times and keeps
// the fastest aggregate (same estimator as the solo benches).
func measureFarm(runs int) (Result, error) {
	const sessions, workers = 8, 4
	r := Result{Name: fmt.Sprintf("Farm/N=%d", sessions), Runs: runs}
	var best experiments.FarmLoadResult
	var bestAllocs uint64
	for i := 0; i < runs; i++ {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		load, err := experiments.RunFarmLoad(experiments.Options{}, sessions, workers)
		runtime.ReadMemStats(&after)
		if err != nil {
			return r, err
		}
		if i == 0 || load.Wall < best.Wall {
			best = load
			bestAllocs = after.Mallocs - before.Mallocs
		}
	}
	r.NsPerOp = best.Wall.Nanoseconds()
	r.SessionsPerSec = best.SessionsPerSec
	r.Retransmits = best.Retransmits
	if best.SyncEvents > 0 {
		r.AllocsPerQuantum = float64(bestAllocs) / float64(best.SyncEvents)
	}
	return r, nil
}

// runFleetLoad drives sessions through a coordinator placing across
// in-process fleet hosts (real control TCP, real farms) and returns the
// aggregate wall time.
func runFleetLoad(hosts, workers, sessions int) (time.Duration, error) {
	c := fleet.NewCoordinator(fleet.Config{})
	defer c.Close()
	for i := 0; i < hosts; i++ {
		f, err := farm.New(farm.WithWorkers(workers), farm.WithQueueDepth(sessions))
		if err != nil {
			return 0, err
		}
		defer f.Close()
		h, err := fleet.ListenHost(f, fleet.HostOptions{Name: fmt.Sprintf("bench-host-%d", i)})
		if err != nil {
			return 0, err
		}
		defer h.Close()
		if _, err := c.Enroll(h.Addr()); err != nil {
			return 0, err
		}
	}

	errs := make(chan error, sessions)
	start := time.Now()
	for i := 0; i < sessions; i++ {
		go func(i int) {
			_, err := c.Submit(context.Background(), experiments.FarmSessionSpec(experiments.Options{}, i, i%2 == 1))
			errs <- err
		}(i)
	}
	for i := 0; i < sessions; i++ {
		if err := <-errs; err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// measureFleet runs the distributed-placement load several times and
// keeps the fastest aggregate.
func measureFleet(runs int) (Result, error) {
	const hosts, workers, sessions = 2, 2, 8
	r := Result{Name: fmt.Sprintf("Fleet/Hosts=%d/N=%d", hosts, sessions), Runs: runs}
	var best time.Duration
	for i := 0; i < runs; i++ {
		wall, err := runFleetLoad(hosts, workers, sessions)
		if err != nil {
			return r, err
		}
		if best == 0 || wall < best {
			best = wall
		}
	}
	r.NsPerOp = best.Nanoseconds()
	r.SessionsPerSec = float64(sessions) / best.Seconds()
	return r, nil
}

func main() {
	out := flag.String("out", "BENCH_cosim.json", "output file (- for stdout)")
	runs := flag.Int("runs", 3, "measured runs per benchmark (fastest kept)")
	verbose := flag.Bool("v", false, "print per-benchmark progress on stderr")
	filter := flag.String("filter", "", "only run benchmarks whose name contains this substring")
	flag.Parse()
	if *runs < 1 {
		*runs = 1
	}

	file := File{Schema: 1, GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	for _, b := range benches() {
		if *filter != "" && !strings.Contains(b.name, *filter) {
			continue
		}
		var best router.RunResult
		var bestWall time.Duration
		var bestAllocs uint64
		for i := 0; i < *runs; i++ {
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			res, err := b.run()
			wall := time.Since(start)
			runtime.ReadMemStats(&after)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cosim-bench: %s: %v\n", b.name, err)
				os.Exit(1)
			}
			if bestWall == 0 || wall < bestWall {
				best, bestWall = res, wall
				bestAllocs = after.Mallocs - before.Mallocs
			}
		}
		r := Result{
			Name:        b.name,
			Runs:        *runs,
			NsPerOp:     bestWall.Nanoseconds(),
			AccuracyPct: 100 * best.Accuracy,
			Retransmits: best.Link.Link.Retransmits,
		}
		// Rates are per quantum boundary: with adaptive elongation the
		// elided rendezvous still advance virtual time, so they count —
		// SyncsPerSec is boundaries simulated per wall-clock second.
		if quanta := best.HW.SyncEvents + best.HW.SyncsElided; quanta > 0 {
			r.SyncsPerSec = float64(quanta) / bestWall.Seconds()
			r.BytesPerQuantum = float64(best.Link.BytesSent) / float64(quanta)
			r.AllocsPerQuantum = float64(bestAllocs) / float64(quanta)
			// HW-side wire frames: the batch layer's counters when one is
			// stacked, otherwise one frame per protocol message.
			frames := best.Batch.Flushes + best.Batch.Bypassed
			if frames == 0 {
				frames = best.Link.DataSent + best.Link.IntSent + best.Link.SyncEvents
			}
			r.FramesPerQuantum = float64(frames) / float64(quanta)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "cosim-bench: %-24s %12d ns/op  %8.1f syncs/s  acc=%.1f%%\n",
				r.Name, r.NsPerOp, r.SyncsPerSec, r.AccuracyPct)
		}
		file.Benchmarks = append(file.Benchmarks, r)
	}

	// Farm point: 8 concurrent TCP sessions (chaos+resilience on half) on
	// 4 workers; sessions/sec is the tracked throughput.
	if *filter == "" || strings.Contains("Farm/N=8", *filter) {
		fr, err := measureFarm(*runs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cosim-bench: %s: %v\n", fr.Name, err)
			os.Exit(1)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "cosim-bench: %-24s %12d ns/op  %8.1f sessions/s\n",
				fr.Name, fr.NsPerOp, fr.SessionsPerSec)
		}
		file.Benchmarks = append(file.Benchmarks, fr)
	}

	// Fleet point: the same session shape placed across 2 in-process
	// hosts by the coordinator; sessions/sec tracks control-plane
	// overhead on top of the farm number above.
	if *filter == "" || strings.Contains("Fleet/Hosts=2/N=8", *filter) {
		fr, err := measureFleet(*runs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cosim-bench: %s: %v\n", fr.Name, err)
			os.Exit(1)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "cosim-bench: %-24s %12d ns/op  %8.1f sessions/s\n",
				fr.Name, fr.NsPerOp, fr.SessionsPerSec)
		}
		file.Benchmarks = append(file.Benchmarks, fr)
	}

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "cosim-bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "cosim-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("cosim-bench: wrote %d benchmarks to %s\n", len(file.Benchmarks), *out)
}
