// Command cosim-farmctl operates a fleet of cosim-farm hosts running in
// -farmd mode (see docs/FLEET.md). It embeds the fleet coordinator: the
// host list lives in a JSON fleet file, and every invocation enrolls
// those hosts and runs one operation against them.
//
//	cosim-farmctl -fleet fleet.json enroll 127.0.0.1:7070 127.0.0.1:7071
//	cosim-farmctl -fleet fleet.json status
//	cosim-farmctl -fleet fleet.json -sessions 24 -tenant ci submit
//	cosim-farmctl -fleet fleet.json drain
//
// Flags come before the command (standard library flag parsing stops at
// the first positional argument).
//
// submit drives -sessions sessions through the fleet with least-loaded
// placement, per-tenant admission (-max-in-flight, -rate), and
// automatic re-placement of sessions lost to a host failure, then
// prints the aggregate throughput and exits nonzero if any session
// failed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/farm"
	"repro/internal/fleet"
	"repro/internal/obs"
)

// fleetFile is the on-disk host list shared between invocations.
type fleetFile struct {
	Hosts []string `json:"hosts"`
}

func loadFleet(path string) (fleetFile, error) {
	var ff fleetFile
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return ff, nil
		}
		return ff, err
	}
	return ff, json.Unmarshal(data, &ff)
}

func saveFleet(path string, ff fleetFile) error {
	data, err := json.MarshalIndent(ff, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	fleetPath := flag.String("fleet", "fleet.json", "fleet file holding the enrolled host addresses")
	hosts := flag.String("hosts", "", "comma-separated host control addresses (overrides the fleet file)")
	sessions := flag.Int("sessions", 8, "submit: sessions to drive through the fleet")
	concurrency := flag.Int("concurrency", 8, "submit: concurrent submissions")
	packets := flag.Int("n", 40, "submit: packets injected per session")
	tsync := flag.Uint64("tsync", 1000, "submit: synchronization interval in cycles")
	transport := flag.String("transport", "tcp", "submit: session transport: inproc, tcp, uds, shm")
	chaosFrac := flag.Float64("chaos-frac", 0.5, "submit: fraction of sessions run under link chaos + resilience")
	specPath := flag.String("spec", "", "submit: JSON SessionSpec file to submit instead of the built-in workload")
	tenant := flag.String("tenant", "", "submit: tenant name for admission control")
	maxInFlight := flag.Int("max-in-flight", 0, "submit: tenant quota — max concurrently placed sessions (0 = unlimited)")
	rate := flag.Float64("rate", 0, "submit: tenant rate limit in sessions/sec (0 = unlimited)")
	heartbeat := flag.Duration("heartbeat", 500*time.Millisecond, "health-probe interval (0 disables the loop)")
	verbose := flag.Bool("v", false, "print one line per completed session")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "cosim-farmctl: "+format+"\n", args...)
		os.Exit(1)
	}
	if flag.NArg() < 1 {
		fail("usage: cosim-farmctl [flags] enroll|status|submit|drain [args]")
	}
	cmd := flag.Arg(0)

	ff, err := loadFleet(*fleetPath)
	if err != nil {
		fail("fleet file %s: %v", *fleetPath, err)
	}
	if *hosts != "" {
		ff.Hosts = splitComma(*hosts)
	}

	if cmd == "enroll" {
		if flag.NArg() < 2 {
			fail("enroll: need at least one host control address")
		}
		ff.Hosts = appendUnique(ff.Hosts, flag.Args()[1:])
	}

	cfg := fleet.Config{HeartbeatInterval: *heartbeat}
	if *tenant != "" || *maxInFlight > 0 || *rate > 0 {
		cfg.Tenants = map[string]fleet.TenantPolicy{
			*tenant: {MaxInFlight: *maxInFlight, SessionsPerSec: *rate},
		}
	}
	reg := obs.NewRegistry()
	cfg.Obs = reg
	c := fleet.NewCoordinator(cfg)
	defer c.Close()

	if len(ff.Hosts) == 0 {
		fail("%s: no hosts; run enroll first or pass -hosts", cmd)
	}
	enrolled := 0
	for _, addr := range ff.Hosts {
		info, err := c.Enroll(addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cosim-farmctl: %v\n", err)
			continue
		}
		enrolled++
		if *verbose || cmd == "enroll" {
			fmt.Printf("enrolled %s at %s: farm %s (%s), %d workers, queue %d\n",
				info.Name, addr, info.FarmAddr, info.FarmNetwork, info.Workers, info.Queue)
		}
	}
	if enrolled == 0 {
		fail("%s: no host answered the hello handshake", cmd)
	}

	switch cmd {
	case "enroll":
		if err := saveFleet(*fleetPath, ff); err != nil {
			fail("writing %s: %v", *fleetPath, err)
		}
		fmt.Printf("fleet file %s: %d hosts\n", *fleetPath, len(ff.Hosts))

	case "status":
		for _, st := range c.Status() {
			state := "up"
			if st.Down {
				state = "DOWN"
			}
			line := fmt.Sprintf("%-16s %-22s %-4s workers=%d queue=%d", st.Info.Name, st.Addr, state, st.Info.Workers, st.Info.Queue)
			if st.Health != nil {
				f := st.Health.Farm
				line += fmt.Sprintf(" active=%d queued=%d completed=%d failed=%d", f.Active, f.Queued, f.Completed, f.Failed)
				if st.Health.Status != "ok" {
					line += " status=" + st.Health.Status
				}
			}
			fmt.Println(line)
		}

	case "drain":
		if err := c.DrainAll(); err != nil {
			fail("%v", err)
		}
		fmt.Println("fleet drained")

	case "submit":
		runSubmit(c, submitOptions{
			sessions:    *sessions,
			concurrency: *concurrency,
			packets:     *packets,
			tsync:       *tsync,
			transport:   *transport,
			chaosFrac:   *chaosFrac,
			specPath:    *specPath,
			tenant:      *tenant,
			verbose:     *verbose,
		}, fail)

	default:
		fail("unknown command %q (want enroll, status, submit, or drain)", cmd)
	}
}

type submitOptions struct {
	sessions    int
	concurrency int
	packets     int
	tsync       uint64
	transport   string
	chaosFrac   float64
	specPath    string
	tenant      string
	verbose     bool
}

// specFor builds the idx'th session of the submit workload: the spec
// file verbatim when one was given (seed varied per session so the
// fleet does distinct work), else the same load shape cosim-farm
// drives.
func specFor(opt submitOptions, fromFile *farm.SessionSpec, idx int) farm.SessionSpec {
	if fromFile != nil {
		spec := *fromFile
		if spec.TB != nil {
			tb := *spec.TB
			tb.Seed += int64(idx)
			spec.TB = &tb
		}
		spec.Tenant = opt.tenant
		return spec
	}
	spec := farm.SessionSpec{
		Tenant:    opt.tenant,
		Transport: opt.transport,
		TSync:     opt.tsync,
		TB:        &farm.TBSpec{PacketsPerPort: opt.packets / 4, Seed: int64(idx + 1)},
	}
	if float64(idx) < opt.chaosFrac*float64(opt.sessions) {
		spec.Chaos = &farm.ChaosSpec{Seed: int64(1000 + idx), Drop: 0.01, Duplicate: 0.01, Corrupt: 0.01}
		spec.Resilience = &farm.ResilienceSpec{RetransmitTimeoutMS: 10}
	}
	return spec
}

func runSubmit(c *fleet.Coordinator, opt submitOptions, fail func(string, ...any)) {
	var fromFile *farm.SessionSpec
	if opt.specPath != "" {
		data, err := os.ReadFile(opt.specPath)
		if err != nil {
			fail("%v", err)
		}
		spec, err := farm.ParseSpec(data)
		if err != nil {
			fail("spec %s: %v", opt.specPath, err)
		}
		fromFile = &spec
	}

	type done struct {
		idx int
		res fleet.SessionResult
		err error
	}
	work := make(chan int)
	results := make(chan done)
	var wg sync.WaitGroup
	for w := 0; w < opt.concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range work {
				res, err := c.Submit(context.Background(), specFor(opt, fromFile, idx))
				results <- done{idx: idx, res: res, err: err}
			}
		}()
	}
	go func() {
		for i := 0; i < opt.sessions; i++ {
			work <- i
		}
		close(work)
		wg.Wait()
		close(results)
	}()

	start := time.Now()
	failed := 0
	for d := range results {
		if d.err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "cosim-farmctl: session %d failed: %v\n", d.idx, d.err)
			continue
		}
		if opt.verbose {
			fp := d.res.Fingerprint
			fmt.Printf("session %d on %s: N=%d acc=%.1f%% cycles=%d ticks=%d syncs=%d wall=%.0fms\n",
				d.idx, d.res.Host, d.res.Generated, 100*d.res.Accuracy,
				fp.BoardCycles, fp.BoardSWTicks, fp.SyncEvents, d.res.WallMS)
		}
	}
	wall := time.Since(start)
	ok := opt.sessions - failed
	fmt.Printf("cosim-farmctl: %d/%d sessions completed in %v (%.1f sessions/s)\n",
		ok, opt.sessions, wall.Round(time.Millisecond), float64(ok)/wall.Seconds())
	if failed > 0 {
		os.Exit(1)
	}
}

func splitComma(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func appendUnique(have, add []string) []string {
	seen := make(map[string]bool, len(have))
	for _, h := range have {
		seen[h] = true
	}
	for _, a := range add {
		if !seen[a] {
			have = append(have, a)
			seen[a] = true
		}
	}
	return have
}
