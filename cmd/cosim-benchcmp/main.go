// Command cosim-benchcmp is the CI perf-regression gate: it compares a
// freshly generated BENCH_cosim.json against a committed baseline and
// fails when any gated benchmark slowed down by more than the allowed
// factor.
//
//	cosim-benchcmp -baseline BENCH_baseline.json -current BENCH_cosim.json
//
// A missing baseline file is not an error — the gate prints a notice
// and exits 0, so the pipeline works on branches that predate the
// baseline (and the baseline can simply be deleted to re-bootstrap it
// after a deliberate perf change or a runner-hardware change).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// benchFile mirrors the cosim-bench output schema (only the fields the
// gate reads).
type benchFile struct {
	Schema     int `json:"schema"`
	Benchmarks []struct {
		Name    string `json:"name"`
		NsPerOp int64  `json:"ns_per_op"`
	} `json:"benchmarks"`
}

func load(path string) (map[string]int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]int64, len(f.Benchmarks))
	for _, b := range f.Benchmarks {
		out[b.Name] = b.NsPerOp
	}
	return out, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "committed baseline file")
	current := flag.String("current", "BENCH_cosim.json", "freshly generated file")
	prefix := flag.String("prefix", "Fig5/,Farm/,Adaptive/", "only gate benchmarks whose name has one of these comma-separated prefixes (empty = all)")
	threshold := flag.Float64("threshold", 1.25, "fail when current/baseline ns/op exceeds this ratio")
	flag.Parse()

	var prefixes []string
	for _, p := range strings.Split(*prefix, ",") {
		if p = strings.TrimSpace(p); p != "" {
			prefixes = append(prefixes, p)
		}
	}
	matches := func(name string) bool {
		if len(prefixes) == 0 {
			return true
		}
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}

	base, err := load(*baseline)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Printf("cosim-benchcmp: no baseline at %s; skipping regression gate\n", *baseline)
			return
		}
		fmt.Fprintf(os.Stderr, "cosim-benchcmp: %v\n", err)
		os.Exit(1)
	}
	regressions := 0
	compared := 0
	// Iterate in the current file's order so the report is stable.
	data, err := os.ReadFile(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cosim-benchcmp: %v\n", err)
		os.Exit(1)
	}
	var ordered benchFile
	if err := json.Unmarshal(data, &ordered); err != nil {
		fmt.Fprintf(os.Stderr, "cosim-benchcmp: %s: %v\n", *current, err)
		os.Exit(1)
	}
	for _, b := range ordered.Benchmarks {
		if !matches(b.Name) {
			continue
		}
		baseNs, ok := base[b.Name]
		if !ok || baseNs <= 0 {
			fmt.Printf("  %-28s %12d ns/op  (no baseline entry; skipped)\n", b.Name, b.NsPerOp)
			continue
		}
		compared++
		ratio := float64(b.NsPerOp) / float64(baseNs)
		verdict := "ok"
		if ratio > *threshold {
			verdict = "REGRESSION"
			regressions++
		}
		fmt.Printf("  %-28s %12d -> %12d ns/op  (%.2fx)  %s\n", b.Name, baseNs, b.NsPerOp, ratio, verdict)
	}
	if compared == 0 {
		fmt.Printf("cosim-benchcmp: no %q benchmarks shared with the baseline; nothing gated\n", *prefix)
		return
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "cosim-benchcmp: %d benchmark(s) regressed beyond %.2fx\n", regressions, *threshold)
		os.Exit(1)
	}
	fmt.Printf("cosim-benchcmp: %d benchmark(s) within %.2fx of baseline\n", compared, *threshold)
}
