// Command cosim-benchcmp is the CI perf-regression gate: it compares a
// freshly generated BENCH_cosim.json against a committed baseline and
// fails when any gated benchmark slowed down — in wall clock (ns_per_op)
// or in steady-state allocation rate (allocs_per_quantum) — by more than
// the allowed factor.
//
//	cosim-benchcmp -baseline BENCH_baseline.json -current BENCH_cosim.json
//
// A missing baseline file is not an error — the gate prints a notice
// and exits 0, so the pipeline works on branches that predate the
// baseline (and the baseline can simply be deleted to re-bootstrap it
// after a deliberate perf change or a runner-hardware change). The same
// rule applies per metric: a baseline entry without allocs_per_quantum
// (recorded before the allocation gate existed) skips that comparison
// only.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// benchEntry is one benchmark's gated metrics.
type benchEntry struct {
	Name             string  `json:"name"`
	NsPerOp          int64   `json:"ns_per_op"`
	AllocsPerQuantum float64 `json:"allocs_per_quantum"`
}

// benchFile mirrors the cosim-bench output schema (only the fields the
// gate reads).
type benchFile struct {
	Schema     int          `json:"schema"`
	Benchmarks []benchEntry `json:"benchmarks"`
}

func load(path string) (map[string]benchEntry, *benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]benchEntry, len(f.Benchmarks))
	for _, b := range f.Benchmarks {
		out[b.Name] = b
	}
	return out, &f, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "committed baseline file")
	current := flag.String("current", "BENCH_cosim.json", "freshly generated file")
	prefix := flag.String("prefix", "Fig5/,Farm/,Adaptive/", "only gate benchmarks whose name has one of these comma-separated prefixes (empty = all)")
	threshold := flag.Float64("threshold", 1.25, "fail when current/baseline ns/op exceeds this ratio")
	allocsThreshold := flag.Float64("allocs-threshold", 1.25, "fail when current/baseline allocs_per_quantum exceeds this ratio")
	flag.Parse()

	var prefixes []string
	for _, p := range strings.Split(*prefix, ",") {
		if p = strings.TrimSpace(p); p != "" {
			prefixes = append(prefixes, p)
		}
	}
	matches := func(name string) bool {
		if len(prefixes) == 0 {
			return true
		}
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}

	base, _, err := load(*baseline)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Printf("cosim-benchcmp: no baseline at %s; skipping regression gate\n", *baseline)
			return
		}
		fmt.Fprintf(os.Stderr, "cosim-benchcmp: %v\n", err)
		os.Exit(1)
	}
	// Iterate in the current file's order so the report is stable.
	_, ordered, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cosim-benchcmp: %v\n", err)
		os.Exit(1)
	}
	regressions := 0
	compared := 0
	for _, b := range ordered.Benchmarks {
		if !matches(b.Name) {
			continue
		}
		bl, ok := base[b.Name]
		if !ok || bl.NsPerOp <= 0 {
			fmt.Printf("  %-28s %12d ns/op  (no baseline entry; skipped)\n", b.Name, b.NsPerOp)
			continue
		}
		compared++
		ratio := float64(b.NsPerOp) / float64(bl.NsPerOp)
		verdict := "ok"
		if ratio > *threshold {
			verdict = "REGRESSION"
			regressions++
		}
		fmt.Printf("  %-28s %12d -> %12d ns/op  (%.2fx)  %s\n", b.Name, bl.NsPerOp, b.NsPerOp, ratio, verdict)
		// Allocation gate: only when both files carry the metric (older
		// baselines predate it; a run without quanta reports zero).
		if bl.AllocsPerQuantum > 0 && b.AllocsPerQuantum > 0 {
			aRatio := b.AllocsPerQuantum / bl.AllocsPerQuantum
			aVerdict := "ok"
			if aRatio > *allocsThreshold {
				aVerdict = "REGRESSION"
				regressions++
			}
			fmt.Printf("  %-28s %12.1f -> %12.1f allocs/quantum  (%.2fx)  %s\n",
				"", bl.AllocsPerQuantum, b.AllocsPerQuantum, aRatio, aVerdict)
		}
	}
	if compared == 0 {
		fmt.Printf("cosim-benchcmp: no %q benchmarks shared with the baseline; nothing gated\n", *prefix)
		return
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "cosim-benchcmp: %d metric(s) regressed beyond the allowed factor\n", regressions)
		os.Exit(1)
	}
	fmt.Printf("cosim-benchcmp: %d benchmark(s) within %.2fx ns/op and %.2fx allocs/quantum of baseline\n",
		compared, *threshold, *allocsThreshold)
}
