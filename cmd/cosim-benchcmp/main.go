// Command cosim-benchcmp is the CI perf-regression gate: it compares a
// freshly generated BENCH_cosim.json against a committed baseline and
// fails when any gated benchmark slowed down — in wall clock (ns_per_op)
// or in steady-state allocation rate (allocs_per_quantum) — by more than
// the allowed factor.
//
//	cosim-benchcmp -baseline BENCH_baseline.json -current BENCH_cosim.json
//
// A missing baseline file is not an error — the gate prints a notice
// and exits 0, so the pipeline works on branches that predate the
// baseline (and the baseline can simply be deleted to re-bootstrap it
// after a deliberate perf change or a runner-hardware change). A missing
// baseline *entry* for a gated benchmark IS an error: a new family that
// never lands in the baseline would otherwise ride ungated forever.
// Per metric, a baseline entry without allocs_per_quantum (recorded
// before the allocation gate existed) skips that comparison only.
//
// Relative-speed assertions between entries of the current file gate
// claimed speedups independently of the baseline:
//
//	cosim-benchcmp -speedup "Transport/Fig5/N=20/tcp:Transport/Fig5/N=20/shm:3"
//
// fails unless the shm point is ≥3× faster (ns_per_op) than the tcp
// point AND its allocs_per_quantum is no worse.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// benchEntry is one benchmark's gated metrics.
type benchEntry struct {
	Name             string  `json:"name"`
	NsPerOp          int64   `json:"ns_per_op"`
	AllocsPerQuantum float64 `json:"allocs_per_quantum"`
}

// benchFile mirrors the cosim-bench output schema (only the fields the
// gate reads).
type benchFile struct {
	Schema     int          `json:"schema"`
	Benchmarks []benchEntry `json:"benchmarks"`
}

func load(path string) (map[string]benchEntry, *benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]benchEntry, len(f.Benchmarks))
	for _, b := range f.Benchmarks {
		out[b.Name] = b
	}
	return out, &f, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "committed baseline file")
	current := flag.String("current", "BENCH_cosim.json", "freshly generated file")
	prefix := flag.String("prefix", "Fig5/,Farm/,Fleet/,Adaptive/,Transport/,Federation/", "only gate benchmarks whose name has one of these comma-separated prefixes (empty = all)")
	threshold := flag.Float64("threshold", 1.25, "fail when current/baseline ns/op exceeds this ratio")
	allocsThreshold := flag.Float64("allocs-threshold", 1.25, "fail when current/baseline allocs_per_quantum exceeds this ratio")
	speedup := flag.String("speedup", "", "comma-separated slow:fast:minRatio assertions over the current file (fail unless fast is minRatio× faster than slow with allocs no worse)")
	flag.Parse()

	var prefixes []string
	for _, p := range strings.Split(*prefix, ",") {
		if p = strings.TrimSpace(p); p != "" {
			prefixes = append(prefixes, p)
		}
	}
	matches := func(name string) bool {
		if len(prefixes) == 0 {
			return true
		}
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}

	// The current file is always needed (speedup assertions gate it even
	// without a baseline). Iterate in its order so the report is stable.
	cur, ordered, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cosim-benchcmp: %v\n", err)
		os.Exit(1)
	}
	speedupFailures := checkSpeedups(cur, *speedup)

	base, _, err := load(*baseline)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Printf("cosim-benchcmp: no baseline at %s; skipping regression gate\n", *baseline)
			if speedupFailures > 0 {
				fmt.Fprintf(os.Stderr, "cosim-benchcmp: %d speedup assertion(s) failed\n", speedupFailures)
				os.Exit(1)
			}
			return
		}
		fmt.Fprintf(os.Stderr, "cosim-benchcmp: %v\n", err)
		os.Exit(1)
	}
	regressions := speedupFailures
	compared := 0
	missing := 0
	for _, b := range ordered.Benchmarks {
		if !matches(b.Name) {
			continue
		}
		bl, ok := base[b.Name]
		if !ok || bl.NsPerOp <= 0 {
			fmt.Printf("  %-28s %12d ns/op  MISSING FROM BASELINE\n", b.Name, b.NsPerOp)
			missing++
			continue
		}
		compared++
		ratio := float64(b.NsPerOp) / float64(bl.NsPerOp)
		verdict := "ok"
		if ratio > *threshold {
			verdict = "REGRESSION"
			regressions++
		}
		fmt.Printf("  %-28s %12d -> %12d ns/op  (%.2fx)  %s\n", b.Name, bl.NsPerOp, b.NsPerOp, ratio, verdict)
		// Allocation gate: only when both files carry the metric (older
		// baselines predate it; a run without quanta reports zero).
		if bl.AllocsPerQuantum > 0 && b.AllocsPerQuantum > 0 {
			aRatio := b.AllocsPerQuantum / bl.AllocsPerQuantum
			aVerdict := "ok"
			if aRatio > *allocsThreshold {
				aVerdict = "REGRESSION"
				regressions++
			}
			fmt.Printf("  %-28s %12.1f -> %12.1f allocs/quantum  (%.2fx)  %s\n",
				"", bl.AllocsPerQuantum, b.AllocsPerQuantum, aRatio, aVerdict)
		}
	}
	if missing > 0 {
		fmt.Fprintf(os.Stderr, "cosim-benchcmp: %d gated benchmark(s) have no baseline entry — the baseline predates a new family; regenerate it (make bench, commit BENCH_cosim.json as BENCH_baseline.json) so the new numbers are gated\n", missing)
		os.Exit(1)
	}
	if compared == 0 && speedupFailures == 0 {
		fmt.Printf("cosim-benchcmp: no %q benchmarks shared with the baseline; nothing gated\n", *prefix)
		return
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "cosim-benchcmp: %d metric(s) regressed beyond the allowed factor\n", regressions)
		os.Exit(1)
	}
	fmt.Printf("cosim-benchcmp: %d benchmark(s) within %.2fx ns/op and %.2fx allocs/quantum of baseline\n",
		compared, *threshold, *allocsThreshold)
}

// checkSpeedups evaluates "slow:fast:minRatio" assertions against the
// current file and returns the number of failures. An entry named in an
// assertion but absent from the file fails it — except a missing *fast*
// entry whose name ends in "/shm" on a platform that cannot emit it;
// callers gate that path in CI where shm always exists, so absence here
// (a exotic local platform) degrades to a warning.
func checkSpeedups(cur map[string]benchEntry, spec string) int {
	failures := 0
	for _, a := range strings.Split(spec, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		parts := strings.Split(a, ":")
		if len(parts) != 3 {
			fmt.Fprintf(os.Stderr, "cosim-benchcmp: bad -speedup assertion %q (want slow:fast:minRatio)\n", a)
			failures++
			continue
		}
		minRatio, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || minRatio <= 0 {
			fmt.Fprintf(os.Stderr, "cosim-benchcmp: bad -speedup ratio in %q\n", a)
			failures++
			continue
		}
		slow, okS := cur[parts[0]]
		fast, okF := cur[parts[1]]
		if !okF && strings.HasSuffix(parts[1], "/shm") {
			fmt.Printf("  speedup %s: %s not in current file (platform without shm?); skipped\n", a, parts[1])
			continue
		}
		if !okS || !okF || slow.NsPerOp <= 0 || fast.NsPerOp <= 0 {
			fmt.Fprintf(os.Stderr, "cosim-benchcmp: speedup assertion %q references entries missing from the current file\n", a)
			failures++
			continue
		}
		ratio := float64(slow.NsPerOp) / float64(fast.NsPerOp)
		verdict := "ok"
		if ratio < minRatio {
			verdict = "TOO SLOW"
			failures++
		}
		fmt.Printf("  speedup %-44s %.2fx (need ≥%.2fx)  %s\n",
			parts[1]+" vs "+parts[0], ratio, minRatio, verdict)
		// The faster transport must also not buy its speed with garbage:
		// allocs per quantum may not exceed the slow side's.
		if fast.AllocsPerQuantum > slow.AllocsPerQuantum && slow.AllocsPerQuantum > 0 {
			fmt.Fprintf(os.Stderr, "cosim-benchcmp: %s allocs/quantum %.2f worse than %s's %.2f\n",
				parts[1], fast.AllocsPerQuantum, parts[0], slow.AllocsPerQuantum)
			failures++
		}
	}
	return failures
}
