// Command cosim-farm runs the multi-session co-simulation farm: one
// shared mux listener (TCP or Unix-domain) multiplexing every board's
// three channels by session ID, a bounded worker pool with a
// backpressured submission queue, and live aggregate metrics.
//
//	cosim-farm -sessions 8 -workers 4 -chaos-frac 0.5 -debug-addr :6060
//
// It drives -sessions concurrent co-simulations through the farm — each
// board dials the shared listener and attaches with its session ID,
// exactly as an external board would (see docs/PROTOCOL.md) — then
// prints the aggregate throughput and exits nonzero if any session
// failed. -hold keeps the farm and the debug server up after the run
// until interrupted, for interactive /metrics scrapes.
//
// With -farmd ADDR the self-driving load generator is replaced by a
// fleet host agent: the farm serves sessions submitted over the fleet
// control protocol on ADDR (see docs/FLEET.md) until interrupted.
//
//	cosim-farm -farmd 127.0.0.1:7070 -name host-a -workers 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/farm"
	"repro/internal/fleet"
	"repro/internal/obs"
)

// sessionSpec builds one session of the self-driving load as a
// serializable spec — the same shape a fleet coordinator would submit.
func sessionSpec(idx, packets int, tsync uint64, transport string, chaos, adaptive, batch bool) farm.SessionSpec {
	spec := farm.SessionSpec{
		Transport: transport,
		TSync:     tsync,
		Adaptive:  adaptive,
		Batch:     batch,
		TB:        &farm.TBSpec{PacketsPerPort: packets / 4, Seed: int64(idx + 1)},
	}
	if chaos {
		spec.Chaos = &farm.ChaosSpec{Seed: int64(1000 + idx), Drop: 0.01, Duplicate: 0.01, Corrupt: 0.01}
		spec.Resilience = &farm.ResilienceSpec{RetransmitTimeoutMS: 10}
	}
	return spec
}

func main() {
	sessions := flag.Int("sessions", 8, "concurrent co-simulation sessions to drive")
	workers := flag.Int("workers", 4, "worker-pool size (sessions running at once)")
	queue := flag.Int("queue", 0, "submission-queue depth (0 = 2x workers)")
	packets := flag.Int("n", 40, "packets injected per session")
	tsync := flag.Uint64("tsync", 1000, "synchronization interval in cycles")
	transport := flag.String("transport", "tcp", "session transport: inproc, tcp, uds, shm")
	chaosFrac := flag.Float64("chaos-frac", 0.5, "fraction of sessions run under link chaos + resilience")
	adaptive := flag.Bool("adaptive", false, "enable adaptive quantum elongation (lookahead negotiation)")
	batch := flag.Bool("batch", false, "enable wire-frame coalescing (one MTBatch per channel flush)")
	listen := flag.String("listen", "127.0.0.1:0", "mux listener address boards dial")
	listenNetwork := flag.String("listen-network", "tcp", "mux listener network: tcp or unix")
	farmd := flag.String("farmd", "", "run as a fleet host agent serving the control protocol on this address (disables the built-in load)")
	name := flag.String("name", "", "host name reported to the fleet coordinator (-farmd mode; default the control address)")
	debugAddr := flag.String("debug-addr", "", "serve live metrics and pprof on this address (e.g. :6060)")
	hold := flag.Bool("hold", false, "keep the farm and debug server up after the run until interrupted")
	verbose := flag.Bool("v", false, "print one line per completed session")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "cosim-farm: "+format+"\n", args...)
		os.Exit(1)
	}

	reg := obs.NewRegistry()
	healthzURL := ""
	if *debugAddr != "" {
		dbg, err := obs.Serve(*debugAddr, reg)
		if err != nil {
			fail("%v", err)
		}
		defer dbg.Close()
		healthzURL = fmt.Sprintf("http://%s/healthz", dbg.Addr())
		fmt.Fprintf(os.Stderr, "cosim-farm: debug server on http://%s (/metrics /metrics.json /healthz /debug/pprof)\n", dbg.Addr())
	}

	f, err := farm.New(
		farm.WithWorkers(*workers),
		farm.WithQueueDepth(*queue),
		farm.WithListen(*listenNetwork, *listen),
		farm.WithObs(reg),
		farm.WithPerSessionMetrics(),
	)
	if err != nil {
		fail("%v", err)
	}
	defer f.Close()
	fmt.Fprintf(os.Stderr, "cosim-farm: mux listener on %s (%s), %d workers\n", f.Addr(), f.Network(), *workers)

	if *farmd != "" {
		runFarmd(f, reg, *farmd, *name, healthzURL, fail)
		return
	}

	ctx := context.Background()
	start := time.Now()
	handles := make([]*farm.Session, 0, *sessions)
	for i := 0; i < *sessions; i++ {
		chaos := float64(i) < *chaosFrac*float64(*sessions)
		s, err := f.Submit(ctx, sessionSpec(i, *packets, *tsync, *transport, chaos, *adaptive, *batch))
		if err != nil {
			fail("submit session %d: %v", i, err)
		}
		handles = append(handles, s)
	}

	failed := 0
	var retransmits uint64
	for _, s := range handles {
		res, err := s.Result()
		if err == nil && res.Conservation != nil {
			err = res.Conservation
		}
		if err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "cosim-farm: session %d failed: %v\n", s.ID(), err)
			continue
		}
		retransmits += res.Link.Link.Retransmits
		if *verbose {
			fmt.Fprintf(os.Stderr, "cosim-farm: session %d done: %v\n", s.ID(), res)
		}
	}
	wall := time.Since(start)
	ok := *sessions - failed
	fmt.Printf("cosim-farm: %d/%d sessions completed in %v (%.1f sessions/s, %d retransmits healed)\n",
		ok, *sessions, wall.Round(time.Millisecond), float64(ok)/wall.Seconds(), retransmits)

	if *hold {
		fmt.Fprintln(os.Stderr, "cosim-farm: holding for scrapes; interrupt to exit")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
	}
	drainCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := f.Drain(drainCtx); err != nil {
		fail("drain: %v", err)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// runFarmd serves the fleet control protocol until interrupted, then
// drains the farm so in-flight sessions finish.
func runFarmd(f *farm.Farm, reg *obs.Registry, addr, name, healthzURL string, fail func(string, ...any)) {
	h, err := fleet.ListenHost(f, fleet.HostOptions{
		Addr:       addr,
		Name:       name,
		HealthzURL: healthzURL,
		Obs:        reg,
	})
	if err != nil {
		fail("farmd: %v", err)
	}
	defer h.Close()
	fmt.Fprintf(os.Stderr, "cosim-farm: farmd %q serving fleet control on %s\n", h.Name(), h.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Fprintln(os.Stderr, "cosim-farm: farmd interrupted; draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := f.Drain(drainCtx); err != nil {
		fail("drain: %v", err)
	}
}
