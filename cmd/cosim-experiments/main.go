// Command cosim-experiments regenerates the paper's evaluation figures
// (Figures 5–7), the derived optimal-T_sync analysis (Figure 8), and the
// design ablations, printing each as an aligned text table (or CSV).
//
// Usage:
//
//	cosim-experiments -fig all            # every figure + ablations
//	cosim-experiments -fig 7              # just the accuracy sweep
//	cosim-experiments -fig 6 -linkdelay 500us
//	cosim-experiments -fig 5 -quick -v
//	cosim-experiments -farm 16            # farm load generator instead
//
// With -farm N the figures are skipped and the tool becomes a load
// generator: N concurrent sessions are pushed through worker pools of
// doubling size up to -farm-workers, tabulating aggregate throughput
// (see internal/farm).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 5|5a|6|7|8|a1..a6|e2|all")
	quick := flag.Bool("quick", false, "smaller sweeps (CI-sized)")
	delay := flag.Duration("linkdelay", 0, "extra per-message link latency for fig 6/8 and ablations (e.g. 500us)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	verbose := flag.Bool("v", false, "print per-run progress on stderr")
	debugAddr := flag.String("debug-addr", "", "serve live metrics and pprof on this address (e.g. :6060)")
	farmN := flag.Int("farm", 0, "load-generator mode: drive this many concurrent farm sessions (skips figures)")
	farmWorkers := flag.Int("farm-workers", 4, "largest worker-pool size for -farm")
	flag.Parse()

	opt := experiments.Options{Quick: *quick, LinkDelay: *delay}
	if *verbose {
		opt.Progress = os.Stderr
	}
	if *debugAddr != "" {
		opt.Obs = obs.NewRegistry()
		dbg, err := obs.Serve(*debugAddr, opt.Obs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cosim-experiments: %v\n", err)
			os.Exit(1)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "cosim-experiments: debug server on http://%s (/metrics /metrics.json /healthz /debug/pprof)\n", dbg.Addr())
	}

	if *farmN > 0 {
		tbl, err := experiments.FarmLoad(opt, *farmN, *farmWorkers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cosim-experiments: farm load: %v\n", err)
			os.Exit(1)
		}
		var werr error
		if *csv {
			werr = tbl.CSV(os.Stdout)
		} else {
			werr = tbl.Write(os.Stdout)
		}
		if werr != nil && werr != io.EOF {
			fmt.Fprintf(os.Stderr, "cosim-experiments: writing output: %v\n", werr)
			os.Exit(1)
		}
		return
	}

	type gen struct {
		name string
		fn   func(experiments.Options) (*experiments.Table, error)
	}
	all := []gen{
		{"5", experiments.Fig5},
		{"5a", experiments.Fig5Adaptive},
		{"6", experiments.Fig6},
		{"7", experiments.Fig7},
		{"8", experiments.Fig8},
		{"a1", experiments.AblationPolicies},
		{"a2", experiments.AblationTiming},
		{"a3", experiments.AblationTransport},
		{"a4", experiments.AblationSyncMode},
		{"a5", experiments.AblationMultiBoard},
		{"a6", experiments.AblationIRQLatency},
		{"e2", experiments.ExpServoQuality},
	}

	var selected []gen
	for _, g := range all {
		if *fig == "all" || *fig == g.name {
			selected = append(selected, g)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "cosim-experiments: unknown figure %q (5|5a|6|7|8|a1..a6|e2|all)\n", *fig)
		flag.Usage()
		os.Exit(2)
	}
	for _, g := range selected {
		start := time.Now()
		tbl, err := g.fn(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cosim-experiments: figure %s: %v\n", g.name, err)
			os.Exit(1)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "figure %s completed in %v\n", g.name, time.Since(start))
		}
		var werr error
		if *csv {
			werr = tbl.CSV(os.Stdout)
			fmt.Println()
		} else {
			werr = tbl.Write(os.Stdout)
		}
		if werr != nil && werr != io.EOF {
			fmt.Fprintf(os.Stderr, "cosim-experiments: writing output: %v\n", werr)
			os.Exit(1)
		}
	}
}
