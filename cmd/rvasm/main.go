// Command rvasm assembles and disassembles the RV32IM subset used by the
// instruction-set simulator — the developer tool for writing new board
// application kernels (see internal/iss).
//
//	rvasm prog.s              # assemble: one hex word per line to stdout
//	rvasm -run prog.s a0=5    # assemble and execute until ECALL; dump regs
//	rvasm -d prog.hex         # disassemble hex words
//	echo 'li a0, 42' | rvasm -  # read source from stdin
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/iss"
)

func main() {
	disasm := flag.Bool("d", false, "disassemble hex words instead of assembling")
	run := flag.Bool("run", false, "assemble and execute until ECALL, then dump registers")
	memSize := flag.Int("mem", 64*1024, "memory size in bytes for -run")
	maxSteps := flag.Uint64("maxsteps", 1_000_000, "instruction budget for -run")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: rvasm [-d|-run] <file|-> [reg=value ...]")
		os.Exit(2)
	}
	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	if *disasm {
		for i, line := range strings.Fields(src) {
			w, err := strconv.ParseUint(strings.TrimPrefix(line, "0x"), 16, 32)
			if err != nil {
				fatal(fmt.Errorf("word %d: %w", i, err))
			}
			fmt.Printf("%08x:  %08x  %s\n", 4*i, uint32(w), iss.Disasm(uint32(w)))
		}
		return
	}

	words, labels, err := iss.Assemble(src)
	if err != nil {
		fatal(err)
	}
	if !*run {
		for _, w := range words {
			fmt.Printf("%08x\n", w)
		}
		return
	}

	cpu := iss.New(*memSize)
	if err := cpu.LoadProgram(words, 0); err != nil {
		fatal(err)
	}
	for _, arg := range flag.Args()[1:] {
		if err := seedRegister(cpu, arg); err != nil {
			fatal(err)
		}
	}
	halt, err := cpu.Run(*maxSteps)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("halted: %v after %d instructions (%d cycles)\n", halt, cpu.Steps, cpu.Cycles)
	for r := 0; r < 32; r += 4 {
		for c := 0; c < 4; c++ {
			fmt.Printf("x%-2d=%08x  ", r+c, cpu.X[r+c])
		}
		fmt.Println()
	}
	if len(labels) > 0 {
		fmt.Printf("labels:")
		for name, addr := range labels {
			fmt.Printf(" %s=%#x", name, addr)
		}
		fmt.Println()
	}
}

func readInput(path string) (string, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return "", err
		}
		defer f.Close()
		r = f
	}
	var sb strings.Builder
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteString("\n")
	}
	return sb.String(), sc.Err()
}

// seedRegister parses "a0=5" / "x3=0xff" initial-value arguments.
func seedRegister(cpu *iss.CPU, arg string) error {
	name, val, ok := strings.Cut(arg, "=")
	if !ok {
		return fmt.Errorf("rvasm: bad register seed %q (want reg=value)", arg)
	}
	v, err := strconv.ParseInt(val, 0, 64)
	if err != nil {
		return fmt.Errorf("rvasm: %q: %w", arg, err)
	}
	// Assemble a tiny probe to resolve the register name through the same
	// parser the assembler uses.
	words, _, err := iss.Assemble(fmt.Sprintf("add %s, %s, %s", name, name, name))
	if err != nil {
		return fmt.Errorf("rvasm: unknown register %q", name)
	}
	rd := (words[0] >> 7) & 31
	cpu.X[rd] = uint32(v)
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rvasm: %v\n", err)
	os.Exit(1)
}
