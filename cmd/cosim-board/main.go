// Command cosim-board runs the board side of the co-simulation: the
// virtual SCM2x0-class board booting the RTOS with the remote router
// device driver and the checksum application, dialing the simulator over
// TCP — the role of the physical board in the paper's setup.
//
//	cosim-board -connect 127.0.0.1:9000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/board"
	"repro/internal/cosim"
	"repro/internal/obs"
	"repro/internal/router"
)

// openShmRetry attaches to the shared-memory link file, tolerating both
// a not-yet-created file (cosim-hw still starting) and the brief window
// where the file exists but the segment header is not yet stamped.
func openShmRetry(path string, patience time.Duration) (cosim.Transport, error) {
	var err error
	for end := time.Now().Add(patience); time.Now().Before(end); time.Sleep(20 * time.Millisecond) {
		var tr cosim.Transport
		if tr, err = cosim.OpenShm(path); err == nil {
			return tr, nil
		}
	}
	return nil, err
}

func main() {
	connect := flag.String("connect", "127.0.0.1:9000", "simulator address")
	shmPath := flag.String("shm-path", "", "attach to the shared-memory link file created by cosim-hw -shm-path instead of dialing TCP")
	annotated := flag.Bool("annotated", false, "use analytic software timing instead of the ISS")
	watchdog := flag.Uint64("watchdog", 0, "install a watchdog with this timeout in HW ticks (0 = none)")
	tracePath := flag.String("trace", "", "write a protocol trace to this file")
	debugAddr := flag.String("debug-addr", "", "serve live metrics and pprof on this address (e.g. :6061)")
	flag.Parse()

	var reg *obs.Registry
	if *debugAddr != "" {
		reg = obs.NewRegistry()
		dbg, err := obs.Serve(*debugAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cosim-board: %v\n", err)
			os.Exit(1)
		}
		defer dbg.Close()
		fmt.Printf("cosim-board: debug server on http://%s (/metrics /metrics.json /healthz /debug/pprof)\n", dbg.Addr())
	}

	acfg := router.DefaultAppConfig()
	if *annotated {
		acfg.Timing = router.TimingAnnotated
	}
	acfg.WatchdogTimeout = *watchdog
	bs, err := router.BuildBoardSide(board.DefaultConfig(), acfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cosim-board: %v\n", err)
		os.Exit(1)
	}

	var tr cosim.Transport
	if *shmPath != "" {
		tr, err = openShmRetry(*shmPath, 10*time.Second)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cosim-board: shm %s: %v\n", *shmPath, err)
			os.Exit(1)
		}
	} else {
		tr, err = cosim.DialTCP(*connect)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cosim-board: dial %s: %v\n", *connect, err)
			os.Exit(1)
		}
	}
	defer tr.Close()
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cosim-board: trace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		tr = cosim.NewTraceTransport(tr, f)
	}
	ep := cosim.NewBoardEndpoint(tr)
	if reg != nil {
		ep.Observe(reg)
	}
	bs.Dev.Attach(ep)
	fmt.Printf("cosim-board: connected to %s; OS in %v state, waiting for virtual ticks\n",
		*connect, bs.Board.K.State())

	if err := bs.Board.Run(ep); err != nil {
		fmt.Fprintf(os.Stderr, "cosim-board: %v\n", err)
		os.Exit(1)
	}
	ks := bs.Board.K.Stats()
	as := bs.App.Stats()
	fmt.Printf("cosim-board: finished at %d cycles / %d sw ticks\n",
		bs.Board.K.Cycles(), bs.Board.K.SWTick())
	fmt.Printf("  grants=%d ticks=%d irqs=%d\n",
		bs.Board.Stats().Grants, bs.Board.Stats().TicksGranted, bs.Board.Stats().IRQsDelivered)
	fmt.Printf("  app: delivered=%d verified=%d corrupt=%d overruns=%d mboxDrops=%d issKcycles=%d\n",
		as.Delivered, as.Verified, as.Corrupt, as.Overruns, as.MboxDrops, as.ISSCycles/1000)
	fmt.Printf("  kernel: ctxSwitches=%d isrs=%d dsrs=%d stateSwitches=%d busy/idle/kernel cycles=%d/%d/%d\n",
		ks.ContextSwitches, ks.ISRs, ks.DSRs, ks.StateSwitches, ks.BusyCycles, ks.IdleCycles, ks.KernelCycles)
	if wd := bs.App.Watchdog(); wd != nil {
		fmt.Printf("  %v\n", wd)
	}
}
